//! Extension: CCEH under the standard YCSB operation mixes.
//!
//! The paper's case studies use the YCSB load phase (pure inserts); this
//! extension exercises the read/update mixes (YCSB-A 50/50, YCSB-B 95/5,
//! YCSB-C read-only) with zipfian key popularity, on PM and on DRAM. It
//! quantifies the §6 takeaway — "given a specific workload, it is
//! important to determine whether read or write is the bottleneck": on
//! PM, the more read-heavy the mix, the more zipfian caching helps, while
//! persists keep update-heavy mixes pinned.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use pmds::Cceh;
use pmem::SimEnv;
use workloads::{KeyDistribution, OpKind, OpMix, YcsbGenerator};

use crate::common::{Curve, ExpResult};
use crate::e7_cceh::Backing;

/// Parameters for the mix extension.
#[derive(Debug, Clone)]
pub struct MixParams {
    /// Which generation to model.
    pub generation: Generation,
    /// Records loaded before the op phase.
    pub records: u64,
    /// Operations per mix.
    pub ops: u64,
    /// Initial table depth (past the LLC by default).
    pub initial_depth: u64,
    /// Clock frequency for Mops/s conversion.
    pub ghz: f64,
    /// Workload generator seed.
    pub seed: u64,
    /// Checkpoint interval in operations for [`run_resumable`]. The
    /// machine is quiesced at every chunk boundary, so this value is part
    /// of the experiment's identity: the same `ckpt_chunk` must be used
    /// to reproduce the same numbers.
    pub ckpt_chunk: u64,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            generation: Generation::G1,
            records: 50_000,
            ops: 50_000,
            initial_depth: 12,
            ghz: 2.1,
            seed: 0x91c5,
            ckpt_chunk: 25_000,
        }
    }
}

/// The three standard mixes.
fn mixes() -> [(&'static str, OpMix); 3] {
    [
        ("YCSB-A (50r/50u)", OpMix::ycsb_a()),
        ("YCSB-B (95r/5u)", OpMix::ycsb_b()),
        ("YCSB-C (100r)", OpMix::ycsb_c()),
    ]
}

/// Runs the mixes on PM and DRAM; x axis is the mix index (0 = A).
pub fn run(params: &MixParams) -> ExpResult {
    let mut result = ExpResult::new(
        format!("EXT / YCSB mixes on CCEH ({})", params.generation),
        "mix(0=A,1=B,2=C)",
        "Mops/s",
    );
    for backing in [Backing::Pm, Backing::Dram] {
        let label = match backing {
            Backing::Pm => "PM",
            Backing::Dram => "DRAM",
        };
        let mut curve = Curve::new(label);
        for (i, (_, mix)) in mixes().iter().enumerate() {
            curve.push(i as f64, measure(params, backing, mix));
        }
        result.curves.push(curve);
    }
    result
}

fn measure(params: &MixParams, backing: Backing, mix: &OpMix) -> f64 {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
    let mut m = Machine::new(cfg);
    let tid = m.spawn(0);
    let mut env = match backing {
        Backing::Pm => SimEnv::new(&mut m, tid),
        Backing::Dram => SimEnv::volatile_backed(&mut m, tid),
    };
    let mut table = Cceh::create(&mut env, params.initial_depth);
    let mut gen = YcsbGenerator::new(
        params.seed,
        KeyDistribution::Zipfian(YcsbGenerator::ZIPFIAN_THETA),
        params.records,
    );
    for _ in 0..params.records {
        let k = gen.next_insert_key().max(1);
        table.insert(&mut env, k, k);
    }
    use pmem::PmemEnv;
    let start = env.now();
    for _ in 0..params.ops {
        match gen.next_op(mix) {
            (OpKind::Read, k) => {
                table.get(&mut env, k.max(1));
            }
            (OpKind::Update, k) | (OpKind::Insert, k) => {
                table.insert(&mut env, k.max(1), k);
            }
        }
    }
    let elapsed = env.now() - start;
    params.ops as f64 / elapsed as f64 * params.ghz * 1e3 // Mops/s
}

// ----- checkpointed execution under the harness ------------------------
//
// The mixes job is the longest-running entry of the matrix at `--full`
// scale, so it demonstrates the harness's mid-job checkpoint/resume: the
// run is broken into fixed op chunks and the machine is quiesced and
// snapshotted (with the generator state, table root, and completed data
// points) at every chunk boundary. Quiescing is itself deterministic —
// it happens at the same boundaries on *every* run — so an uninterrupted
// run, a killed-and-resumed run, and a retried run all produce identical
// numbers.

/// Magic prefix of a mixes checkpoint payload.
const CKPT_MAGIC: &str = "MIXCKPT1";

/// Mutable per-pair execution state that survives a checkpoint.
struct PairState {
    m: Machine,
    table: Cceh,
    gen: YcsbGenerator,
    /// 0 = load phase, 1 = op phase.
    phase: u8,
    /// Records loaded (phase 0) or ops executed (phase 1).
    done: u64,
    /// Op-phase start time (cycles); 0 until the op phase begins.
    start: u64,
}

fn encode_checkpoint(completed: &[f64], bi: usize, mi: usize, st: &mut PairState) -> Vec<u8> {
    use simbase::WireWriter;
    let snap = st.m.checkpoint(); // quiesces st.m deterministically
    let gen_state = st.gen.state();
    let mut w = WireWriter::new();
    w.put_str(CKPT_MAGIC);
    w.put_u32(completed.len() as u32);
    for &v in completed {
        w.put_f64(v);
    }
    w.put_u32(bi as u32);
    w.put_u32(mi as u32);
    w.put_u8(st.phase);
    w.put_u64(st.done);
    w.put_u64(st.start);
    w.put_u64(st.table.root().0);
    w.put_u64(st.table.len());
    w.put_u64(gen_state.rng_state);
    w.put_u64(gen_state.inserted);
    w.put_bytes(&snap.encode());
    w.into_bytes()
}

/// Decoded checkpoint: completed data points plus the in-flight pair.
struct DecodedCheckpoint {
    completed: Vec<f64>,
    bi: usize,
    mi: usize,
    state: PairState,
}

fn decode_checkpoint(params: &MixParams, payload: &[u8]) -> Option<DecodedCheckpoint> {
    use optane_core::MachineSnapshot;
    use simbase::{Addr, WireReader};
    let mut r = WireReader::new(payload);
    if r.get_string().ok()? != CKPT_MAGIC {
        return None;
    }
    let n = r.get_u32().ok()? as usize;
    let mut completed = Vec::with_capacity(n);
    for _ in 0..n {
        completed.push(r.get_f64().ok()?);
    }
    let bi = r.get_u32().ok()? as usize;
    let mi = r.get_u32().ok()? as usize;
    let phase = r.get_u8().ok()?;
    let done = r.get_u64().ok()?;
    let start = r.get_u64().ok()?;
    let root = Addr(r.get_u64().ok()?);
    let table_len = r.get_u64().ok()?;
    let rng_state = r.get_u64().ok()?;
    let inserted = r.get_u64().ok()?;
    let snap_bytes = r.get_bytes().ok()?;
    let snap = MachineSnapshot::decode(snap_bytes).ok()?;
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
    let m = Machine::restore(cfg, &snap).ok()?;
    // `Cceh::recover` would re-count pairs through the cache hierarchy,
    // perturbing the restored clock; reattach untimed instead.
    let table = Cceh::from_root(root, table_len);
    let mut gen = YcsbGenerator::new(
        params.seed,
        KeyDistribution::Zipfian(YcsbGenerator::ZIPFIAN_THETA),
        params.records,
    );
    gen.restore_state(&workloads::YcsbState {
        rng_state,
        inserted,
    });
    Some(DecodedCheckpoint {
        completed,
        bi,
        mi,
        state: PairState {
            m,
            table,
            gen,
            phase,
            done,
            start,
        },
    })
}

fn mk_env(m: &mut Machine, tid: optane_core::ThreadId, backing: Backing) -> SimEnv<'_> {
    match backing {
        Backing::Pm => SimEnv::new(m, tid),
        Backing::Dram => SimEnv::volatile_backed(m, tid),
    }
}

/// Runs the mixes with periodic checkpoints through the harness job
/// context. An interrupted run resumes from its last checkpoint; results
/// are identical to an uninterrupted run at the same parameters.
pub fn run_resumable(
    params: &MixParams,
    ctx: &harness::JobCtx,
) -> Result<ExpResult, harness::JobError> {
    use harness::JobError;
    use pmem::PmemEnv;
    let backings = [Backing::Pm, Backing::Dram];
    let mix_list = mixes();

    // Resume from a surviving checkpoint, if any. An undecodable payload
    // (format drift, foreign file) falls back to a fresh run.
    let mut resumed: Option<DecodedCheckpoint> = ctx
        .load_checkpoint()?
        .and_then(|(_, payload)| decode_checkpoint(params, &payload));
    let mut completed: Vec<f64> = resumed
        .as_ref()
        .map(|d| d.completed.clone())
        .unwrap_or_default();
    let mut step: u64 = 0;

    for (bi, backing) in backings.iter().enumerate() {
        for (mi, (_, mix)) in mix_list.iter().enumerate() {
            let pair_idx = bi * mix_list.len() + mi;
            if pair_idx < completed.len() {
                continue; // measured before the interruption
            }
            // Pick up the in-flight pair from the checkpoint or start it
            // from scratch. A checkpoint for a *different* pair than the
            // one we need is stale (should not happen) — ignore it.
            let mut st = match resumed.take() {
                Some(d) if d.bi == bi && d.mi == mi => d.state,
                _ => {
                    let cfg =
                        MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
                    let mut m = Machine::new(cfg);
                    let tid = m.spawn(0);
                    let table = {
                        let mut env = mk_env(&mut m, tid, *backing);
                        Cceh::create(&mut env, params.initial_depth)
                    };
                    let gen = YcsbGenerator::new(
                        params.seed,
                        KeyDistribution::Zipfian(YcsbGenerator::ZIPFIAN_THETA),
                        params.records,
                    );
                    PairState {
                        m,
                        table,
                        gen,
                        phase: 0,
                        done: 0,
                        start: 0,
                    }
                }
            };
            let tid = optane_core::ThreadId(0);

            let ckpt_chunk = params.ckpt_chunk.max(1);

            // Load phase, in checkpointed chunks.
            while st.phase == 0 && st.done < params.records {
                let chunk = ckpt_chunk.min(params.records - st.done);
                {
                    let mut env = mk_env(&mut st.m, tid, *backing);
                    for _ in 0..chunk {
                        let k = st.gen.next_insert_key().max(1);
                        st.table.insert(&mut env, k, k);
                    }
                    ctx.report_sim_time(env.now());
                }
                st.done += chunk;
                step += 1;
                let payload = encode_checkpoint(&completed, bi, mi, &mut st);
                ctx.save_checkpoint(step, &payload)?;
                if ctx.cancelled() {
                    return Err(JobError::Failed("cancelled at a checkpoint".into()));
                }
            }
            if st.phase == 0 {
                st.phase = 1;
                st.done = 0;
                let env = mk_env(&mut st.m, tid, *backing);
                st.start = env.now();
            }

            // Op phase, in checkpointed chunks.
            while st.done < params.ops {
                let chunk = ckpt_chunk.min(params.ops - st.done);
                {
                    let mut env = mk_env(&mut st.m, tid, *backing);
                    for _ in 0..chunk {
                        match st.gen.next_op(mix) {
                            (OpKind::Read, k) => {
                                st.table.get(&mut env, k.max(1));
                            }
                            (OpKind::Update, k) | (OpKind::Insert, k) => {
                                st.table.insert(&mut env, k.max(1), k);
                            }
                        }
                    }
                    ctx.report_sim_time(env.now());
                }
                st.done += chunk;
                if st.done < params.ops {
                    step += 1;
                    let payload = encode_checkpoint(&completed, bi, mi, &mut st);
                    ctx.save_checkpoint(step, &payload)?;
                    if ctx.cancelled() {
                        return Err(JobError::Failed("cancelled at a checkpoint".into()));
                    }
                }
            }

            let end = {
                let env = mk_env(&mut st.m, tid, *backing);
                env.now()
            };
            let elapsed = end.saturating_sub(st.start).max(1);
            completed.push(params.ops as f64 / elapsed as f64 * params.ghz * 1e3);
        }
    }
    ctx.clear_checkpoint()?;

    let mut result = ExpResult::new(
        format!("EXT / YCSB mixes on CCEH ({})", params.generation),
        "mix(0=A,1=B,2=C)",
        "Mops/s",
    );
    for (bi, _) in backings.iter().enumerate() {
        let label = if bi == 0 { "PM" } else { "DRAM" };
        let mut curve = Curve::new(label);
        for (mi, _) in mix_list.iter().enumerate() {
            curve.push(mi as f64, completed[bi * mix_list.len() + mi]);
        }
        result.curves.push(curve);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn resumable_run_matches_itself_and_survives_interruption() {
        let params = MixParams {
            records: 4000,
            ops: 4000,
            ckpt_chunk: 1500, // several checkpoints per phase
            ..MixParams::default()
        };
        // Uninterrupted checkpointed run (no store: quiesces happen, the
        // payload write is skipped).
        let full = run_resumable(&params, &harness::JobCtx::detached("mixes-test", 1)).unwrap();

        // Interrupted run: cancel fires at the first checkpoint, then a
        // second context resumes from the surviving checkpoint file.
        let dir = std::env::temp_dir().join(format!("mixes_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = harness::CheckpointStore::new(&dir).unwrap();
        let cancel = Arc::new(AtomicBool::new(true)); // pre-armed
        let ctx1 = harness::JobCtx::new(
            "mixes-test",
            1,
            1,
            Arc::clone(&cancel),
            Arc::new(AtomicU64::new(0)),
            Some(store.clone()),
        );
        let interrupted = run_resumable(&params, &ctx1);
        assert!(interrupted.is_err(), "pre-armed cancel interrupts the run");
        assert!(
            store.load("mixes-test").unwrap().is_some(),
            "a checkpoint survives the interruption"
        );
        let ctx2 = harness::JobCtx::new(
            "mixes-test",
            1,
            1,
            Arc::new(AtomicBool::new(false)),
            Arc::new(AtomicU64::new(0)),
            Some(store.clone()),
        );
        let resumed = run_resumable(&params, &ctx2).unwrap();
        assert!(
            store.load("mixes-test").unwrap().is_none(),
            "checkpoint cleared after completion"
        );
        // Byte-identical results: every point matches exactly.
        for (cf, cr) in full.curves.iter().zip(resumed.curves.iter()) {
            assert_eq!(cf.label, cr.label);
            for (pf, pr) in cf.points.iter().zip(cr.points.iter()) {
                assert_eq!(pf.1.to_bits(), pr.1.to_bits(), "curve {}", cf.label);
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        // Unused-field silencer: cancel flag still set.
        assert!(cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn read_heavier_mixes_are_faster_on_pm() {
        let r = run(&MixParams {
            records: 8000,
            ops: 8000,
            ..MixParams::default()
        });
        let pm = r.curve("PM").unwrap();
        let a = pm.y_at(0.0).unwrap();
        let c = pm.y_at(2.0).unwrap();
        assert!(
            c > a,
            "read-only C beats update-heavy A on PM (persists cost): {c} vs {a}"
        );
        // DRAM is faster than PM for every mix.
        let dram = r.curve("DRAM").unwrap();
        for i in 0..3 {
            assert!(
                dram.y_at(i as f64).unwrap() > pm.y_at(i as f64).unwrap(),
                "mix {i}: DRAM > PM"
            );
        }
    }
}
