//! Extension: CCEH under the standard YCSB operation mixes.
//!
//! The paper's case studies use the YCSB load phase (pure inserts); this
//! extension exercises the read/update mixes (YCSB-A 50/50, YCSB-B 95/5,
//! YCSB-C read-only) with zipfian key popularity, on PM and on DRAM. It
//! quantifies the §6 takeaway — "given a specific workload, it is
//! important to determine whether read or write is the bottleneck": on
//! PM, the more read-heavy the mix, the more zipfian caching helps, while
//! persists keep update-heavy mixes pinned.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Machine, MachineConfig};
use pmds::Cceh;
use pmem::SimEnv;
use workloads::{KeyDistribution, OpKind, OpMix, YcsbGenerator};

use crate::common::{Curve, ExpResult};
use crate::e7_cceh::Backing;

/// Parameters for the mix extension.
#[derive(Debug, Clone)]
pub struct MixParams {
    /// Which generation to model.
    pub generation: Generation,
    /// Records loaded before the op phase.
    pub records: u64,
    /// Operations per mix.
    pub ops: u64,
    /// Initial table depth (past the LLC by default).
    pub initial_depth: u64,
    /// Clock frequency for Mops/s conversion.
    pub ghz: f64,
}

impl Default for MixParams {
    fn default() -> Self {
        MixParams {
            generation: Generation::G1,
            records: 50_000,
            ops: 50_000,
            initial_depth: 12,
            ghz: 2.1,
        }
    }
}

/// The three standard mixes.
fn mixes() -> [(&'static str, OpMix); 3] {
    [
        ("YCSB-A (50r/50u)", OpMix::ycsb_a()),
        ("YCSB-B (95r/5u)", OpMix::ycsb_b()),
        ("YCSB-C (100r)", OpMix::ycsb_c()),
    ]
}

/// Runs the mixes on PM and DRAM; x axis is the mix index (0 = A).
pub fn run(params: &MixParams) -> ExpResult {
    let mut result = ExpResult::new(
        format!("EXT / YCSB mixes on CCEH ({})", params.generation),
        "mix(0=A,1=B,2=C)",
        "Mops/s",
    );
    for backing in [Backing::Pm, Backing::Dram] {
        let label = match backing {
            Backing::Pm => "PM",
            Backing::Dram => "DRAM",
        };
        let mut curve = Curve::new(label);
        for (i, (_, mix)) in mixes().iter().enumerate() {
            curve.push(i as f64, measure(params, backing, mix));
        }
        result.curves.push(curve);
    }
    result
}

fn measure(params: &MixParams, backing: Backing, mix: &OpMix) -> f64 {
    let cfg = MachineConfig::for_generation(params.generation, PrefetchConfig::all(), 1);
    let mut m = Machine::new(cfg);
    let tid = m.spawn(0);
    let mut env = match backing {
        Backing::Pm => SimEnv::new(&mut m, tid),
        Backing::Dram => SimEnv::volatile_backed(&mut m, tid),
    };
    let mut table = Cceh::create(&mut env, params.initial_depth);
    let mut gen = YcsbGenerator::new(
        0x91c5,
        KeyDistribution::Zipfian(YcsbGenerator::ZIPFIAN_THETA),
        params.records,
    );
    for _ in 0..params.records {
        let k = gen.next_insert_key().max(1);
        table.insert(&mut env, k, k);
    }
    use pmem::PmemEnv;
    let start = env.now();
    for _ in 0..params.ops {
        match gen.next_op(mix) {
            (OpKind::Read, k) => {
                table.get(&mut env, k.max(1));
            }
            (OpKind::Update, k) | (OpKind::Insert, k) => {
                table.insert(&mut env, k.max(1), k);
            }
        }
    }
    let elapsed = env.now() - start;
    params.ops as f64 / elapsed as f64 * params.ghz * 1e3 // Mops/s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_heavier_mixes_are_faster_on_pm() {
        let r = run(&MixParams {
            records: 8000,
            ops: 8000,
            ..MixParams::default()
        });
        let pm = r.curve("PM").unwrap();
        let a = pm.y_at(0.0).unwrap();
        let c = pm.y_at(2.0).unwrap();
        assert!(
            c > a,
            "read-only C beats update-heavy A on PM (persists cost): {c} vs {a}"
        );
        // DRAM is faster than PM for every mix.
        let dram = r.curve("DRAM").unwrap();
        for i in 0..3 {
            assert!(
                dram.y_at(i as f64).unwrap() > pm.y_at(i as f64).unwrap(),
                "mix {i}: DRAM > PM"
            );
        }
    }
}
