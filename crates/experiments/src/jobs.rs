//! The experiment matrix as schedulable [`harness`] jobs.
//!
//! Each paper figure/table becomes one or more independent jobs (one per
//! generation where the experiment sweeps G1 and G2 separately). Jobs
//! write their CSV/JSON artifacts atomically and return the rendered
//! table text as their summary; the `repro` binary prints summaries in
//! deterministic matrix order after the scheduler finishes, so parallel
//! execution never interleaves output.
//!
//! For fault-handling tests and CI drills, [`apply_injection`] wraps a
//! named job so it panics or hangs instead of running — exercising the
//! scheduler's panic isolation and watchdog paths end to end.

use std::path::{Path, PathBuf};
use std::time::Duration;

use harness::{write_atomic, Job, JobCtx, JobError, JobOutput};
use optane_core::Generation;

use crate::common::{log_sweep, ExpError, ExpResult, MetricsSpec};
use crate::{
    e0_bandwidth, e10_pmcheck, e11_faultsim, e12_cluster, e13_rebalance, e14_simspeed, e15_mt,
    e1_read_buffer, e2_prefetch, e3_write_amp, e4_wb_hit, e5_rap, e6_latency, e7_cceh, e8_btree,
    e9_redirect, ext_mixes, table1,
};

/// Run scale: how much work each experiment does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CI scale: shrinks the validation suites (`pmcheck`, `faultsim`).
    Smoke,
    /// Default scale: seconds per experiment.
    Default,
    /// Paper scale: larger working sets and op counts.
    Full,
}

impl Scale {
    /// The manifest tag for this scale.
    pub fn tag(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }

    fn full(&self) -> bool {
        matches!(self, Scale::Full)
    }

    fn smoke(&self) -> bool {
        matches!(self, Scale::Smoke)
    }
}

/// All experiment names, in canonical matrix order.
pub const EXPERIMENT_NAMES: &[&str] = &[
    "e0",
    "e1",
    "e2",
    "e3",
    "e4",
    "e5",
    "e6",
    "table1",
    "e7",
    "e8",
    "mixes",
    "pmcheck",
    "faultsim",
    "e9",
    "cluster",
    "rebalance",
    "bench",
    "e15",
];

fn gen_suffix(gen: Generation) -> String {
    format!("{gen}").to_lowercase()
}

fn slug(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect::<String>()
        .to_lowercase()
}

fn exp_err(name: &str, e: ExpError) -> JobError {
    JobError::Failed(format!("{name}: {e}"))
}

/// Atomically writes one result's CSV into `out_dir`; returns the
/// artifact path relative to `out_dir`.
fn emit_csv(out_dir: &Path, r: &ExpResult) -> Result<PathBuf, JobError> {
    let rel = PathBuf::from(format!("{}.csv", slug(&r.name)));
    write_atomic(&out_dir.join(&rel), r.to_csv().as_bytes())?;
    Ok(rel)
}

/// Packages a set of results as a validated job output: CSVs written
/// atomically, tables concatenated into the summary. Results carrying a
/// `simwatch` time series additionally emit a `metrics_<slug>.jsonl`
/// artifact; the `repro` binary concatenates those (in matrix order)
/// into the file named by `--metrics`.
fn finish(out_dir: &Path, results: &[ExpResult]) -> Result<JobOutput, JobError> {
    let mut out = JobOutput::ok(String::new());
    let mut summary = String::new();
    for r in results {
        summary.push_str(&r.to_table());
        summary.push('\n');
        out.artifacts.push(emit_csv(out_dir, r)?);
        if let Some(series) = &r.metrics_jsonl {
            let rel = PathBuf::from(format!("metrics_{}.jsonl", slug(&r.name)));
            write_atomic(&out_dir.join(&rel), series.as_bytes())?;
            out.artifacts.push(rel);
        }
    }
    out.summary = summary.trim_end().to_string();
    Ok(out)
}

type RunFn = Box<dyn Fn(&JobCtx) -> Result<JobOutput, JobError> + Send + Sync>;

/// A closure-backed experiment job.
pub struct ExperimentJob {
    id: String,
    run: RunFn,
}

impl ExperimentJob {
    fn boxed(id: impl Into<String>, run: RunFn) -> Box<dyn Job> {
        Box::new(ExperimentJob { id: id.into(), run })
    }
}

impl Job for ExperimentJob {
    fn id(&self) -> String {
        self.id.clone()
    }

    fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError> {
        (self.run)(ctx)
    }
}

/// Builds the job list for a selection of experiment names (`"all"`
/// selects everything), generations, and scale. Jobs are returned in
/// canonical matrix order; ids look like `e2:g1` (per-generation) or
/// `table1` (generation-independent). When `metrics` is set, the
/// sampling-capable experiments (E1, E3) emit `simwatch` time-series
/// artifacts at the requested interval.
pub fn matrix(
    selection: &[String],
    gens: &[Generation],
    scale: Scale,
    out_dir: &Path,
    metrics: Option<MetricsSpec>,
) -> Vec<Box<dyn Job>> {
    let run_all = selection.iter().any(|w| w == "all");
    let wants = |name: &str| run_all || selection.iter().any(|w| w == name);
    let max_wss: u64 = if scale.full() { 1 << 30 } else { 64 << 20 };
    let mut jobs: Vec<Box<dyn Job>> = Vec::new();
    let out = out_dir.to_path_buf();

    if wants("e0") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e0:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e0_bandwidth::run(&e0_bandwidth::E0Params {
                        generation: gen,
                        blocks_per_thread: if scale.full() { 50_000 } else { 10_000 },
                        ..Default::default()
                    });
                    finish(&out, &[r])
                }),
            ));
        }
    }
    if wants("e1") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e1:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e1_read_buffer::run(&e1_read_buffer::E1Params {
                        generation: gen,
                        metrics,
                        ..Default::default()
                    });
                    finish(&out, &[r])
                }),
            ));
        }
    }
    if wants("e2") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e2:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e2_prefetch::run(&e2_prefetch::E2Params {
                        generation: gen,
                        wss_points: log_sweep(4 << 10, max_wss, 1),
                        ..Default::default()
                    });
                    finish(&out, &r)
                }),
            ));
        }
    }
    if wants("e3") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e3:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e3_write_amp::run(&e3_write_amp::E3Params {
                        generation: gen,
                        metrics,
                        ..Default::default()
                    });
                    finish(&out, &[r])
                }),
            ));
        }
    }
    if wants("e4") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "e4",
            Box::new(move |_ctx| {
                let r = e4_wb_hit::run(&e4_wb_hit::E4Params::default());
                finish(&out, &[r])
            }),
        ));
    }
    if wants("e5") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e5:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e5_rap::run(&e5_rap::E5Params {
                        generation: gen,
                        iters: if scale.full() { 20_000 } else { 3000 },
                        ..Default::default()
                    })
                    .map_err(|e| exp_err("e5", e))?;
                    finish(&out, &r)
                }),
            ));
        }
    }
    if wants("e6") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e6:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e6_latency::run(&e6_latency::E6Params {
                        generation: gen,
                        wss_points: log_sweep(4 << 10, max_wss, 1),
                        ..Default::default()
                    })
                    .map_err(|e| exp_err("e6", e))?;
                    finish(&out, &r)
                }),
            ));
        }
    }
    if wants("table1") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "table1",
            Box::new(move |_ctx| {
                let r = table1::run(&table1::Table1Params {
                    inserts: if scale.full() { 2_000_000 } else { 100_000 },
                    ..Default::default()
                });
                let text = format!("{r}");
                write_atomic(&out.join("table1.txt"), text.as_bytes())?;
                let summary =
                    format!("# Table 1: time breakdown of key insertion in CCEH (G1)\n{text}");
                Ok(JobOutput::ok(summary).with_artifact("table1.txt"))
            }),
        ));
    }
    if wants("e7") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "e7",
            Box::new(move |_ctx| {
                let r = e7_cceh::run(&e7_cceh::E7Params {
                    inserts_per_worker: if scale.full() { 200_000 } else { 20_000 },
                    ..Default::default()
                })
                .map_err(|e| exp_err("e7", e))?;
                finish(&out, &r)
            }),
        ));
    }
    if wants("e8") {
        let out = out.clone();
        let gens_owned = gens.to_vec();
        jobs.push(ExperimentJob::boxed(
            "e8",
            Box::new(move |_ctx| {
                let r = e8_btree::run(&e8_btree::E8Params {
                    inserts: if scale.full() { 400_000 } else { 40_000 },
                    generations: gens_owned.clone(),
                    ..Default::default()
                });
                finish(&out, &r)
            }),
        ));
    }
    if wants("mixes") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("mixes:{}", gen_suffix(gen)),
                Box::new(move |ctx| {
                    // The checkpoint-aware path: the longest job of the
                    // matrix resumes mid-run after an interruption.
                    let r = ext_mixes::run_resumable(
                        &ext_mixes::MixParams {
                            generation: gen,
                            records: if scale.full() { 500_000 } else { 50_000 },
                            ops: if scale.full() { 500_000 } else { 50_000 },
                            ..Default::default()
                        },
                        ctx,
                    )?;
                    finish(&out, &[r])
                }),
            ));
        }
    }
    if wants("pmcheck") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("pmcheck:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let outcomes = e10_pmcheck::run(&e10_pmcheck::E10Params {
                        generation: gen,
                        cceh_inserts: if scale.full() {
                            5000
                        } else if scale.smoke() {
                            150
                        } else {
                            400
                        },
                        btree_inserts: if scale.full() {
                            2000
                        } else if scale.smoke() {
                            120
                        } else {
                            300
                        },
                        ..Default::default()
                    });
                    let mut summary = format!("# pmcheck: persist-ordering analysis, {gen}\n");
                    let mut text = String::new();
                    let mut validated = true;
                    for o in &outcomes {
                        summary.push_str(&o.summary());
                        summary.push('\n');
                        text.push_str(&format!("== {gen} ==\n"));
                        text.push_str(&o.report.to_text());
                        text.push('\n');
                        validated &= o.validated;
                    }
                    summary.push_str(if validated {
                        "pmcheck cross-validation: all verdicts agree with simulated crash outcomes"
                    } else {
                        "pmcheck cross-validation: MISMATCH between checker verdicts and crash outcomes"
                    });
                    let sfx = gen_suffix(gen);
                    let json_rel = PathBuf::from(format!("pmcheck_{sfx}.json"));
                    let txt_rel = PathBuf::from(format!("pmcheck_{sfx}.txt"));
                    write_atomic(&out.join(&json_rel), e10_pmcheck::to_json(&outcomes).as_bytes())?;
                    write_atomic(&out.join(&txt_rel), text.as_bytes())?;
                    Ok(JobOutput {
                        artifacts: vec![json_rel, txt_rel],
                        summary,
                        validated,
                    })
                }),
            ));
        }
    }
    if wants("faultsim") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("faultsim:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let params = if scale.smoke() {
                        e11_faultsim::E11Params::smoke(gen)
                    } else {
                        e11_faultsim::E11Params {
                            generation: gen,
                            cceh_inserts: if scale.full() { 2000 } else { 240 },
                            btree_inserts: if scale.full() { 1000 } else { 160 },
                            ..Default::default()
                        }
                    };
                    let outcomes =
                        e11_faultsim::run(&params).map_err(|e| exp_err("faultsim", e))?;
                    let mut summary = format!(
                        "# faultsim: fault injection + crash-state exploration, {gen}\n"
                    );
                    let mut validated = true;
                    for o in &outcomes {
                        summary.push_str(&o.summary());
                        summary.push('\n');
                        validated &= o.validated;
                    }
                    summary.push_str(if validated {
                        "faultsim cross-validation: all faultsim verdicts agree with crash-state exploration"
                    } else {
                        "faultsim cross-validation: MISMATCH between checker verdicts and explored crash states"
                    });
                    let json_rel = PathBuf::from(format!("faultsim_{}.json", gen_suffix(gen)));
                    write_atomic(
                        &out.join(&json_rel),
                        e11_faultsim::to_json(&outcomes).as_bytes(),
                    )?;
                    Ok(JobOutput {
                        artifacts: vec![json_rel],
                        summary,
                        validated,
                    })
                }),
            ));
        }
    }
    if wants("e9") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e9:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let threads = match gen {
                        Generation::G1 => vec![1, 2, 4, 8, 12, 16],
                        Generation::G2 => vec![1, 2, 4, 8, 12, 16, 20, 24],
                    };
                    let p = e9_redirect::E9Params {
                        generation: gen,
                        wss_points: log_sweep(4 << 10, max_wss, 1),
                        visits: if scale.full() { 200_000 } else { 40_000 },
                        threads,
                        ..Default::default()
                    };
                    let f13 = e9_redirect::run_fig13(&p);
                    let f14 = e9_redirect::run_fig14(&p);
                    let mut all = vec![f13];
                    all.extend(f14);
                    finish(&out, &all)
                }),
            ));
        }
    }
    if wants("cluster") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "cluster",
            Box::new(move |ctx| {
                let mut p = if scale.smoke() {
                    e12_cluster::E12Params::smoke(ctx.seed)
                } else {
                    e12_cluster::E12Params {
                        ops: if scale.full() { 30_000 } else { 6_000 },
                        seed: ctx.seed,
                        ..Default::default()
                    }
                };
                p.metrics = metrics;
                let t0 = std::time::Instant::now();
                let r = e12_cluster::run(&p).map_err(|e| exp_err("cluster", e))?;
                let wall_us = t0.elapsed().as_micros() as u64;
                let mut output = finish(&out, &r.results)?;
                let report_rel = PathBuf::from("cluster_availability.txt");
                write_atomic(&out.join(&report_rel), r.availability_report.as_bytes())?;
                output.artifacts.push(report_rel);
                let bench_rel = PathBuf::from("BENCH_cluster.json");
                write_atomic(
                    &out.join(&bench_rel),
                    e12_cluster::bench_json(&r).as_bytes(),
                )?;
                output.artifacts.push(bench_rel);
                let wall_rel = PathBuf::from("BENCH_cluster_wall.json");
                write_atomic(
                    &out.join(&wall_rel),
                    e12_cluster::bench_wall_json(&r, wall_us).as_bytes(),
                )?;
                output.artifacts.push(wall_rel);
                output.validated = r.validated;
                output.summary.push_str(if r.validated {
                    "\ncluster: every request answered, zero acknowledged-write loss"
                } else {
                    "\ncluster: VALIDATION FAILED (loss, hang, or availability < 99%)"
                });
                Ok(output)
            }),
        ));
    }
    if wants("rebalance") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "rebalance",
            Box::new(move |ctx| {
                let mut p = if scale.smoke() {
                    e13_rebalance::E13Params::smoke(ctx.seed)
                } else {
                    e13_rebalance::E13Params {
                        ops: if scale.full() { 20_000 } else { 4_000 },
                        seed: ctx.seed,
                        ..Default::default()
                    }
                };
                p.metrics = metrics;
                let t0 = std::time::Instant::now();
                let r = e13_rebalance::run(&p).map_err(|e| exp_err("rebalance", e))?;
                let wall_us = t0.elapsed().as_micros() as u64;
                let mut output = finish(&out, &r.results)?;
                let report_rel = PathBuf::from("rebalance_report.txt");
                write_atomic(&out.join(&report_rel), r.rebalance_report.as_bytes())?;
                output.artifacts.push(report_rel);
                let bench_rel = PathBuf::from("BENCH_rebalance.json");
                write_atomic(
                    &out.join(&bench_rel),
                    e13_rebalance::bench_json(&r).as_bytes(),
                )?;
                output.artifacts.push(bench_rel);
                let wall_rel = PathBuf::from("BENCH_rebalance_wall.json");
                write_atomic(
                    &out.join(&wall_rel),
                    e13_rebalance::bench_wall_json(&r, wall_us).as_bytes(),
                )?;
                output.artifacts.push(wall_rel);
                output.validated = r.validated;
                output.summary.push_str(if r.validated {
                    "\nrebalance: every drill held the oracles — zero acked-write loss, \
                     no stale-epoch ack, exactly-once ownership"
                } else {
                    "\nrebalance: VALIDATION FAILED (oracle violation, unfinished migration, \
                     or availability < 99%)"
                });
                Ok(output)
            }),
        ));
    }
    if wants("bench") {
        let out = out.clone();
        jobs.push(ExperimentJob::boxed(
            "bench",
            Box::new(move |ctx| {
                let p = if scale.smoke() {
                    e14_simspeed::E14Params::smoke(ctx.seed)
                } else {
                    e14_simspeed::E14Params {
                        seed: ctx.seed,
                        ..Default::default()
                    }
                };
                let r = e14_simspeed::run(&p);
                let mut output = finish(&out, std::slice::from_ref(&r.result))?;
                let bench_rel = PathBuf::from("BENCH_sim.json");
                write_atomic(
                    &out.join(&bench_rel),
                    e14_simspeed::bench_json(&r).as_bytes(),
                )?;
                output.artifacts.push(bench_rel);
                let wall_rel = PathBuf::from("BENCH_sim_wall.json");
                write_atomic(
                    &out.join(&wall_rel),
                    e14_simspeed::bench_wall_json(&r).as_bytes(),
                )?;
                output.artifacts.push(wall_rel);
                let nosink_e0 = r
                    .scenarios
                    .iter()
                    .find(|s| s.name == "e0_stream_nosink")
                    .map(|s| {
                        format!(
                            "{:.0} sim-ops/wall-sec, {:.1} sim-ops/Mcycle",
                            bench::ops_per_wall_sec(s.sim_ops, s.wall_us),
                            bench::ops_per_mcycle(s.sim_ops, s.sim_cycles)
                        )
                    })
                    .unwrap_or_else(|| "missing".into());
                output.summary.push_str(&format!(
                    "\nbench: {} scenarios measured; no-sink E0 hot path at {nosink_e0}",
                    r.scenarios.len()
                ));
                Ok(output)
            }),
        ));
    }
    if wants("e15") {
        for &gen in gens {
            let out = out.clone();
            jobs.push(ExperimentJob::boxed(
                format!("e15:{}", gen_suffix(gen)),
                Box::new(move |_ctx| {
                    let r = e15_mt::run(&e15_mt::E15Params {
                        generation: gen,
                        threads: if scale.smoke() {
                            vec![1, 2, 4]
                        } else {
                            vec![1, 2, 4, 8, 16]
                        },
                        blocks_per_thread: if scale.full() { 4000 } else { 800 },
                        rap_iters_per_thread: if scale.full() { 2000 } else { 400 },
                        ops_per_thread: if scale.full() { 400 } else { 80 },
                        ..Default::default()
                    })
                    .map_err(|e| exp_err("e15", e))?;
                    finish(&out, &r)
                }),
            ));
        }
    }
    jobs
}

/// What [`apply_injection`] makes the target job do instead of running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Panic immediately (exercises `catch_unwind` isolation).
    Panic,
    /// Hang until the watchdog cancels the attempt (exercises the
    /// deadline path).
    Hang,
}

struct InjectedJob {
    inner: Box<dyn Job>,
    mode: Inject,
}

impl Job for InjectedJob {
    fn id(&self) -> String {
        self.inner.id()
    }

    fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError> {
        match self.mode {
            Inject::Panic => panic!("injected panic (--inject) in job {}", ctx.job_id),
            Inject::Hang => {
                // Cooperative hang: spins until the watchdog fires, so
                // the worker thread is reclaimed rather than abandoned.
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(JobError::Failed("injected hang cancelled".into()))
            }
        }
    }
}

/// Replaces the job whose id equals `target` with a faulty wrapper.
/// Returns `false` when no job matches.
pub fn apply_injection(jobs: &mut Vec<Box<dyn Job>>, target: &str, mode: Inject) -> bool {
    for j in jobs.iter_mut() {
        if j.id() == target {
            let inner = std::mem::replace(
                j,
                ExperimentJob::boxed("placeholder", Box::new(|_| Ok(JobOutput::ok("")))),
            );
            *j = Box::new(InjectedJob { inner, mode });
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_the_full_selection_in_order() {
        let gens = [Generation::G1, Generation::G2];
        let out = PathBuf::from("unused");
        let jobs = matrix(&["all".to_string()], &gens, Scale::Smoke, &out, None);
        let ids: Vec<String> = jobs.iter().map(|j| j.id()).collect();
        // Per-generation experiments appear twice, singletons once.
        assert!(ids.contains(&"e0:g1".to_string()));
        assert!(ids.contains(&"e0:g2".to_string()));
        assert!(ids.contains(&"table1".to_string()));
        assert!(ids.contains(&"e7".to_string()));
        assert!(ids.contains(&"mixes:g2".to_string()));
        assert!(ids.contains(&"faultsim:g1".to_string()));
        assert!(ids.contains(&"cluster".to_string()));
        assert!(ids.contains(&"rebalance".to_string()));
        assert!(ids.contains(&"bench".to_string()));
        assert!(ids.contains(&"e15:g1".to_string()));
        assert!(ids.contains(&"e15:g2".to_string()));
        assert_eq!(ids.len(), 29, "11 per-gen × 2 + 7 singletons: {ids:?}");
        // Canonical order: e0 before e9, pmcheck before faultsim.
        let pos = |id: &str| ids.iter().position(|x| x == id).unwrap();
        assert!(pos("e0:g1") < pos("e9:g1"));
        assert!(pos("pmcheck:g1") < pos("faultsim:g1"));
        assert!(pos("e9:g1") < pos("cluster"));
        assert!(pos("cluster") < pos("rebalance"));
        assert!(pos("rebalance") < pos("bench"));
        assert!(pos("bench") < pos("e15:g1"));
    }

    #[test]
    fn selection_filters_jobs() {
        let gens = [Generation::G1];
        let out = PathBuf::from("unused");
        let jobs = matrix(
            &["e0".to_string(), "table1".to_string()],
            &gens,
            Scale::Default,
            &out,
            None,
        );
        let ids: Vec<String> = jobs.iter().map(|j| j.id()).collect();
        assert_eq!(ids, vec!["e0:g1".to_string(), "table1".to_string()]);
    }

    #[test]
    fn injection_replaces_the_target_job() {
        let gens = [Generation::G1];
        let out = std::env::temp_dir();
        let mut jobs = matrix(&["e0".to_string()], &gens, Scale::Default, &out, None);
        assert!(apply_injection(&mut jobs, "e0:g1", Inject::Panic));
        assert!(!apply_injection(&mut jobs, "nope", Inject::Hang));
        // The injected job panics; run under catch_unwind to observe.
        let ctx = JobCtx::detached("e0:g1", 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| jobs[0].run(&ctx)));
        assert!(r.is_err(), "injected job panics");
    }
}
