//! Experiment harness: one module per paper figure/table.
//!
//! Every module exposes a `Params` struct (scaled-down defaults that run
//! in seconds) and a `run` function returning a structured
//! [`common::ExpResult`]. The `repro` binary prints the paper's rows and
//! writes CSVs; workspace integration tests assert each claim's *shape*
//! (step positions, orderings, crossovers) against these results.
//!
//! | module | paper reference | claim |
//! |---|---|---|
//! | [`e0_bandwidth`] | §2.2 known characteristics | substrate validation |
//! | [`e1_read_buffer`] | Figure 2, §3.1 | C1 |
//! | [`e2_prefetch`] | Figure 6, §3.4 | C2 |
//! | [`e3_write_amp`] | Figure 3, §3.2 | C3 |
//! | [`e4_wb_hit`] | Figure 4, §3.2 | C4 |
//! | [`e5_rap`] | Figure 7, §3.5 | C5 |
//! | [`e6_latency`] | Figure 8, §3.6 | C6 |
//! | [`table1`] | Table 1, §4.1 | — |
//! | [`e7_cceh`] | Figure 10, §4.1 | C7 |
//! | [`e8_btree`] | Figure 12, §4.2 | C8 |
//! | [`e9_redirect`] | Figures 13–14, §4.3 | C9 |
//! | [`ext_mixes`] | extension (§6 takeaway) | — |
//! | [`e10_pmcheck`] | extension: persist-ordering lint | — |
//! | [`e11_faultsim`] | extension: fault injection + crash-state exploration | — |
//! | [`e12_cluster`] | extension: fault-tolerant sharded cluster under load | — |
//! | [`e13_rebalance`] | extension: crash-safe keyspace migration + anti-entropy | — |
//! | [`e14_simspeed`] | extension: simulator speed benchmark + CI gate | — |
//! | [`e15_mt`] | extension: multi-thread contention on the deterministic executor | — |

#![forbid(unsafe_code)]

pub mod common;
pub mod divergence;
pub mod e0_bandwidth;
pub mod e10_pmcheck;
pub mod e11_faultsim;
pub mod e12_cluster;
pub mod e13_rebalance;
pub mod e14_simspeed;
pub mod e15_mt;
pub mod e1_read_buffer;
pub mod e2_prefetch;
pub mod e3_write_amp;
pub mod e4_wb_hit;
pub mod e5_rap;
pub mod e6_latency;
pub mod e7_cceh;
pub mod e8_btree;
pub mod e9_redirect;
pub mod ext_mixes;
pub mod jobs;
pub mod table1;

pub use common::{Curve, ExpResult};
