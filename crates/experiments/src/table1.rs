//! Table 1 (§4.1): time breakdown of CCEH key insertion.
//!
//! YCSB-style inserts into CCEH under {1, 5} threads x {1, 6} DIMMs, with
//! per-phase cycle attribution. The paper's headline: the *segment
//! metadata* random read is the single largest component (~50%) and
//! dwarfs the persistence barriers, regardless of thread count or DIMM
//! population. The paper folds bucket probing into its three-column
//! presentation; we report it separately and note the mapping in
//! `EXPERIMENTS.md`.

use cpucache::PrefetchConfig;
use optane_core::{Generation, Interleaver, Machine, MachineConfig, SchedPolicy, Step};
use pmds::{cceh::InsertBreakdown, Cceh};
use pmem::SimEnv;
use workloads::YcsbGenerator;

/// One row of the table.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Worker threads.
    pub threads: usize,
    /// DIMMs behind the iMC.
    pub dimms: usize,
    /// Fraction of insert time in the segment-metadata random read.
    pub segment_meta: f64,
    /// Fraction in bucket probing and the pair store.
    pub bucket: f64,
    /// Fraction in persistence barriers.
    pub persists: f64,
    /// Fraction in everything else (hash, directory, splits).
    pub misc: f64,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Rows in (threads, dimms) order.
    pub rows: Vec<Table1Row>,
}

impl std::fmt::Display for Table1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:>14} {:>16} {:>14} {:>12} {:>10}",
            "Thread/DIMM", "Segment meta", "Bucket probe", "Persists", "Misc"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>14} {:>15.1}% {:>13.1}% {:>11.1}% {:>9.1}%",
                format!("{}T/{}-DIMM", r.threads, r.dimms),
                r.segment_meta * 100.0,
                r.bucket * 100.0,
                r.persists * 100.0,
                r.misc * 100.0,
            )?;
        }
        Ok(())
    }
}

/// Parameters for Table 1.
#[derive(Debug, Clone)]
pub struct Table1Params {
    /// Total keys inserted per configuration (the paper uses 16 M; the
    /// default is scaled down).
    pub inserts: u64,
    /// (threads, dimms) cases.
    pub cases: Vec<(usize, usize)>,
    /// Initial table depth. The paper's 16 M-key table dwarfs the LLC; a
    /// scaled run must pre-size the table past the LLC (depth 12 =
    /// 4096 segments = 64 MB) to expose the same random-read behaviour.
    pub initial_depth: u64,
}

impl Default for Table1Params {
    fn default() -> Self {
        Table1Params {
            inserts: 100_000,
            cases: vec![(1, 1), (5, 1), (1, 6), (5, 6)],
            initial_depth: 12,
        }
    }
}

/// Runs the Table 1 measurement on a G1 machine.
pub fn run(params: &Table1Params) -> Table1Result {
    let rows = params
        .cases
        .iter()
        .map(|&(threads, dimms)| measure_case(params.inserts, threads, dimms, params.initial_depth))
        .collect();
    Table1Result { rows }
}

fn measure_case(inserts: u64, threads: usize, dimms: usize, depth: u64) -> Table1Row {
    let cfg = MachineConfig::for_generation(Generation::G1, PrefetchConfig::all(), dimms);
    let mut m = Machine::new(cfg);
    let tids: Vec<_> = (0..threads).map(|_| m.spawn(0)).collect();
    let mut table = {
        let mut env = SimEnv::new(&mut m, tids[0]);
        Cceh::create(&mut env, depth)
    };
    let mut keys = YcsbGenerator::load_keys(inserts);
    let mut total = InsertBreakdown::default();
    // Lanes drain one shared key stream, one instrumented insert per
    // executor step; round-robin draws keys in the same order as the
    // legacy `loop { for tid }` nesting (see
    // `executor_matches_legacy_round_robin`).
    Interleaver::new(SchedPolicy::RoundRobin).run(
        &mut m,
        &tids,
        &mut |mm: &mut Machine, tid, _lane: usize| {
            let Some(key) = keys.next() else {
                return Step::Done;
            };
            let mut env = SimEnv::new(mm, tid);
            let bd = table.insert_instrumented(&mut env, key.max(1), key);
            total.add(&bd);
            Step::Ran
        },
    );
    let sum = total.total().max(1) as f64;
    Table1Row {
        threads,
        dimms,
        segment_meta: total.segment_meta as f64 / sum,
        bucket: total.bucket as f64 / sum,
        persists: total.persists as f64 / sum,
        misc: (total.directory + total.misc) as f64 / sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The legacy hand-rolled nesting this module used before the
    /// executor migration, kept verbatim as the byte-identity reference.
    fn measure_legacy(inserts: u64, threads: usize, dimms: usize, depth: u64) -> Table1Row {
        let cfg = MachineConfig::for_generation(Generation::G1, PrefetchConfig::all(), dimms);
        let mut m = Machine::new(cfg);
        let tids: Vec<_> = (0..threads).map(|_| m.spawn(0)).collect();
        let mut table = {
            let mut env = SimEnv::new(&mut m, tids[0]);
            Cceh::create(&mut env, depth)
        };
        let mut keys = YcsbGenerator::load_keys(inserts);
        let mut total = InsertBreakdown::default();
        'outer: loop {
            for &tid in &tids {
                let Some(key) = keys.next() else {
                    break 'outer;
                };
                let mut env = SimEnv::new(&mut m, tid);
                let bd = table.insert_instrumented(&mut env, key.max(1), key);
                total.add(&bd);
            }
        }
        let sum = total.total().max(1) as f64;
        Table1Row {
            threads,
            dimms,
            segment_meta: total.segment_meta as f64 / sum,
            bucket: total.bucket as f64 / sum,
            persists: total.persists as f64 / sum,
            misc: (total.directory + total.misc) as f64 / sum,
        }
    }

    #[test]
    fn executor_matches_legacy_round_robin() {
        // 1000 keys over 3 threads ends mid-round, covering the
        // partial-final-round retirement path.
        for &threads in &[1usize, 3] {
            let exec = measure_case(1000, threads, 1, 12);
            let legacy = measure_legacy(1000, threads, 1, 12);
            assert_eq!(
                (
                    exec.segment_meta.to_bits(),
                    exec.bucket.to_bits(),
                    exec.persists.to_bits(),
                    exec.misc.to_bits()
                ),
                (
                    legacy.segment_meta.to_bits(),
                    legacy.bucket.to_bits(),
                    legacy.persists.to_bits(),
                    legacy.misc.to_bits()
                ),
                "round-robin executor must be byte-identical to the legacy \
                 shared-stream loop ({threads} threads)"
            );
        }
    }

    #[test]
    fn segment_metadata_dominates_regardless_of_config() {
        let r = run(&Table1Params {
            inserts: 6000,
            cases: vec![(1, 1), (5, 1), (1, 6), (5, 6)],
            initial_depth: 12,
        });
        for row in &r.rows {
            assert!(
                row.segment_meta > row.persists,
                "{}T/{}D: metadata read ({:.2}) should beat persists ({:.2})",
                row.threads,
                row.dimms,
                row.segment_meta,
                row.persists
            );
            assert!(
                row.segment_meta > 0.25,
                "{}T/{}D: metadata is the major component: {:.2}",
                row.threads,
                row.dimms,
                row.segment_meta
            );
            let total = row.segment_meta + row.bucket + row.persists + row.misc;
            assert!((total - 1.0).abs() < 1e-6, "fractions sum to 1: {total}");
        }
    }
}
