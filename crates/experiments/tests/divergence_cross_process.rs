//! Cross-process determinism: the tentpole guarantee, tested end to end.
//!
//! Two *separate* child processes (fresh SipHash keys, fresh address
//! space) run the same small experiment at the same seed; their trace
//! hashes, checkpoint bytes, and metrics JSONL must agree bit for bit.
//! A third process with a planted perturbation must disagree — otherwise
//! the witness is vacuous. Finally the full parent-side bisector is
//! driven through `repro divergence --perturb` to prove it locates the
//! planted op.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn child_stdout(args: &[&str]) -> String {
    let out = repro()
        .args(["divergence-child"])
        .args(args)
        .output()
        .expect("spawn repro divergence-child");
    assert!(
        out.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Extracts the `key=value` report fields from child stdout.
fn fields(stdout: &str) -> Vec<(String, String)> {
    stdout
        .lines()
        .filter_map(|l| l.strip_prefix("divergence-child: "))
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[test]
fn two_processes_same_seed_are_hash_identical() {
    for exp in ["e0", "e3", "e12"] {
        let a = child_stdout(&[exp, "--seed", "7", "--smoke"]);
        let b = child_stdout(&[exp, "--seed", "7", "--smoke"]);
        assert_eq!(
            fields(&a),
            fields(&b),
            "{exp}: two fresh processes at the same seed must report \
             identical trace/checkpoint/metrics/result hashes"
        );
        // The comparison is meaningful: a real stream was hashed.
        let f = fields(&a);
        let ops = f.iter().find(|(k, _)| k == "ops").map(|(_, v)| v.clone());
        assert!(
            ops.as_deref()
                .is_some_and(|v| v.parse::<u64>().unwrap_or(0) > 100),
            "{exp}: witness saw a real op stream, got ops={ops:?}"
        );
    }
}

#[test]
fn metrics_hash_is_cross_process_stable_and_nonzero() {
    let a = child_stdout(&["e3", "--seed", "3", "--smoke"]);
    let get = |s: &str, key: &str| {
        fields(s)
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_default()
    };
    assert_ne!(
        get(&a, "metrics_hash"),
        "0x0000000000000000",
        "e3 witness must hash a real simwatch series"
    );
    let b = child_stdout(&["e3", "--seed", "3", "--smoke"]);
    assert_eq!(get(&a, "metrics_hash"), get(&b, "metrics_hash"));
    assert_eq!(get(&a, "checkpoint_hash"), get(&b, "checkpoint_hash"));
}

#[test]
fn planted_perturbation_is_visible_across_processes() {
    let clean = child_stdout(&["e0", "--seed", "7", "--smoke"]);
    let planted = child_stdout(&["e0", "--seed", "7", "--smoke", "--perturb", "17"]);
    let get = |s: &str, key: &str| {
        fields(s)
            .into_iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_default()
    };
    assert_eq!(get(&clean, "ops"), get(&planted, "ops"));
    assert_ne!(
        get(&clean, "trace_hash"),
        get(&planted, "trace_hash"),
        "a planted divergence must change the trace hash"
    );
}

#[test]
fn parent_bisects_planted_divergence_to_the_exact_op() {
    // `--perturb K` makes the parent *expect* a divergence bisected to
    // exactly op K; exit 0 is the bisector's proof of correctness.
    let out = repro()
        .args([
            "divergence",
            "e0",
            "--seed",
            "7",
            "--smoke",
            "--perturb",
            "23",
        ])
        .output()
        .expect("spawn repro divergence");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "bisector did not locate the planted op:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("DIVERGED at op 23"),
        "expected bisection to op 23:\n{stdout}"
    );
    assert!(
        stdout.contains("first divergence"),
        "expected a two-sided diff marker:\n{stdout}"
    );
}

#[test]
fn parent_reports_agreement_for_clean_runs() {
    let out = repro()
        .args(["divergence", "e0", "--seed", "9", "--smoke"])
        .output()
        .expect("spawn repro divergence");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean dual run must agree:\nstdout:\n{stdout}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("two fresh processes agree"),
        "expected agreement verdict:\n{stdout}"
    );
}
