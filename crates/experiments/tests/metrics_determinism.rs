//! Satellite guarantee: the `simwatch` time series is a pure function
//! of the simulated instruction stream. Two runs of the same experiment
//! at the same parameters must produce byte-identical JSONL — that is
//! what lets CI diff metrics artifacts across a kill/resume drill.

use experiments::common::MetricsSpec;
use experiments::{e1_read_buffer, e3_write_amp};
use optane_core::Generation;

fn e1_series() -> String {
    let r = e1_read_buffer::run(&e1_read_buffer::E1Params {
        generation: Generation::G1,
        wss_points: vec![8 << 10, 24 << 10],
        rounds: 2,
        metrics: Some(MetricsSpec { interval: 50_000 }),
        seed: 0,
    });
    r.metrics_jsonl.expect("sampling was requested")
}

fn e3_series() -> String {
    let r = e3_write_amp::run(&e3_write_amp::E3Params {
        generation: Generation::G1,
        wss_points: vec![8 << 10],
        rounds: 4,
        metrics: Some(MetricsSpec { interval: 50_000 }),
        seed: 0,
    });
    r.metrics_jsonl.expect("sampling was requested")
}

#[test]
fn same_parameters_give_byte_identical_series() {
    assert_eq!(e1_series(), e1_series());
    assert_eq!(e3_series(), e3_series());
}

#[test]
fn series_carries_the_paper_counters_per_sample() {
    let s = e1_series();
    assert!(!s.is_empty(), "sampling produced rows");
    for line in s.lines() {
        for key in [
            "\"t\":",
            "\"ctx\":",
            "\"imc_read_bytes\":",
            "\"media_read_bytes\":",
            "\"wpq_max_depth\":",
            "\"wb_hit_ratio\":",
            "\"write_absorption\":",
        ] {
            assert!(line.contains(key), "row missing {key}: {line}");
        }
    }
    // Each sweep point runs on a fresh machine whose clock restarts, so
    // every point contributes at least its final sample under its own
    // context label.
    assert!(s.contains("\"ctx\":\"e1 cpx=4 wss=8192\""), "{s}");
    assert!(s.contains("\"ctx\":\"e1 cpx=1 wss=24576\""), "{s}");
}

#[test]
fn write_experiment_reports_wpq_occupancy() {
    let r = e3_write_amp::run(&e3_write_amp::E3Params {
        generation: Generation::G1,
        wss_points: vec![8 << 10],
        rounds: 4,
        metrics: Some(MetricsSpec { interval: 50_000 }),
        seed: 0,
    });
    let note = r
        .notes
        .iter()
        .find(|n| n.starts_with("queue occupancy:"))
        .expect("occupancy note present");
    assert!(note.contains("wpq max depth"), "{note}");
    // nt-stores drain through the WPQ, so the run observed real depth.
    assert!(!note.contains("wpq max depth 0"), "{note}");
}
