//! End-to-end drills for the supervised `repro` binary.
//!
//! These run the real executable (via `CARGO_BIN_EXE_repro`) against a
//! temp results directory and assert the robustness contract: an
//! injected panic or hang becomes a typed failure record in
//! `manifest.json` plus a nonzero exit while sibling jobs still produce
//! their artifacts, and a failed run restarted with `--resume` ends up
//! byte-identical to a run that never failed.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use harness::JsonValue;

fn run_repro(args: &[&str], out: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .arg("--out")
        .arg(out)
        .output()
        .unwrap()
}

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("repro-cli-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).unwrap();
    }
    dir
}

fn manifest_job<'a>(manifest: &'a JsonValue, job: &str) -> &'a JsonValue {
    manifest
        .get("jobs")
        .and_then(|j| j.get(job))
        .unwrap_or_else(|| panic!("job {job} missing from manifest"))
}

fn load_manifest(out: &Path) -> JsonValue {
    let text = std::fs::read_to_string(out.join("manifest.json")).expect("manifest.json exists");
    JsonValue::parse(&text).expect("manifest.json parses")
}

/// Byte-compare every results file except the bookkeeping that is
/// allowed to differ between runs (timing in the manifest, leftover
/// checkpoint directory).
fn assert_results_identical(a: &Path, b: &Path) {
    let mut names: Vec<String> = std::fs::read_dir(a)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n != "manifest.json" && n != "checkpoints")
        .collect();
    names.sort();
    assert!(
        names.iter().any(|n| n == "report.txt"),
        "reference run produced no report.txt"
    );
    for name in names {
        let fa = std::fs::read(a.join(&name)).unwrap();
        let fb = std::fs::read(b.join(&name))
            .unwrap_or_else(|e| panic!("{name} missing from resumed run: {e}"));
        assert_eq!(fa, fb, "{name} differs between runs");
    }
}

#[test]
fn injected_panic_is_a_typed_failure_and_siblings_still_complete() {
    let out = temp_out("panic");
    let run = run_repro(
        &[
            "e1",
            "--gen",
            "both",
            "--smoke",
            "--parallel",
            "2",
            "--inject",
            "panic:e1:g2",
        ],
        &out,
    );
    assert_eq!(run.status.code(), Some(1), "a failed job must exit nonzero");

    let manifest = load_manifest(&out);
    let failed = manifest_job(&manifest, "e1:g2");
    assert_eq!(
        failed.get("status").and_then(JsonValue::as_str),
        Some("failed")
    );
    assert_eq!(
        failed.get("error_kind").and_then(JsonValue::as_str),
        Some("panic")
    );
    let ok = manifest_job(&manifest, "e1:g1");
    assert_eq!(ok.get("status").and_then(JsonValue::as_str), Some("done"));
    let artifacts = ok.get("artifacts").and_then(JsonValue::as_array).unwrap();
    assert!(
        !artifacts.is_empty(),
        "completed sibling recorded no artifacts"
    );
    for art in artifacts {
        let rel = art.as_str().unwrap();
        assert!(out.join(rel).exists(), "artifact {rel} missing on disk");
    }
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn injected_hang_hits_the_deadline_with_a_timeout_record() {
    let out = temp_out("hang");
    let run = run_repro(
        &[
            "e1",
            "--gen",
            "both",
            "--smoke",
            "--parallel",
            "2",
            "--deadline",
            "2",
            "--inject",
            "hang:e1:g2",
        ],
        &out,
    );
    assert_eq!(run.status.code(), Some(1));

    let manifest = load_manifest(&out);
    let hung = manifest_job(&manifest, "e1:g2");
    assert_eq!(
        hung.get("status").and_then(JsonValue::as_str),
        Some("failed")
    );
    assert_eq!(
        hung.get("error_kind").and_then(JsonValue::as_str),
        Some("timeout")
    );
    // Timeouts are never retried: retrying a hang would hang again.
    assert_eq!(hung.get("attempts").and_then(JsonValue::as_u64), Some(1));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn resume_after_a_failure_is_byte_identical_to_an_uninterrupted_run() {
    let reference = temp_out("resume-ref");
    let run = run_repro(
        &[
            "e1",
            "--gen",
            "both",
            "--smoke",
            "--parallel",
            "2",
            "--seed",
            "5",
        ],
        &reference,
    );
    assert_eq!(run.status.code(), Some(0), "reference run failed");

    // Same matrix, same seed, but e1:g2 panics on the first pass.
    let resumed = temp_out("resume-cut");
    let run = run_repro(
        &[
            "e1",
            "--gen",
            "both",
            "--smoke",
            "--parallel",
            "2",
            "--seed",
            "5",
            "--inject",
            "panic:e1:g2",
        ],
        &resumed,
    );
    assert_eq!(run.status.code(), Some(1));

    // --resume skips the completed job and re-runs only the failed one.
    let run = run_repro(
        &[
            "e1",
            "--gen",
            "both",
            "--smoke",
            "--parallel",
            "2",
            "--seed",
            "5",
            "--resume",
        ],
        &resumed,
    );
    assert_eq!(run.status.code(), Some(0), "resume run failed");
    let stderr = String::from_utf8_lossy(&run.stderr);
    assert!(
        stderr.contains("(1 resumed as complete)"),
        "resume did not skip the completed job: {stderr}"
    );

    assert_results_identical(&reference, &resumed);
    std::fs::remove_dir_all(&reference).ok();
    std::fs::remove_dir_all(&resumed).ok();
}

#[test]
fn bad_arguments_exit_2() {
    for args in [
        &["--bogus-flag"][..],
        &["e1", "--inject", "explode:e1:g1"][..],
        &["e1", "--inject", "panic:no-such-job"][..],
        &["no-such-experiment"][..],
        &["e1", "--full", "--smoke"][..],
    ] {
        let out = temp_out("badargs");
        let run = run_repro(args, &out);
        assert_eq!(
            run.status.code(),
            Some(2),
            "args {args:?} should be rejected"
        );
        std::fs::remove_dir_all(&out).ok();
    }
}
