//! Software-layer fault injection: deliberate flush/fence elision.
//!
//! [`FaultyEnv`] wraps any [`PmemEnv`] and silently drops a configurable
//! fraction of flushes and/or fences, leaving the wrapped data structure's
//! logic untouched. This is how the `pmcheck` checker is validated
//! end-to-end: run a known-correct structure under an [`ElisionPlan`], and
//! the checker must flag exactly the persists the plan removed — and a
//! real `power_fail(LoseUnflushed)` must lose exactly the lines the
//! checker predicted (see `repro pmcheck`).
//!
//! Dropping a `clwb` turns a correct persist into a missing-flush bug;
//! dropping an `sfence` turns it into a missing-fence (ordering) bug.
//!
//! (Formerly `pmds::inject`; it moved here when `faultsim` unified fault
//! injection across layers. `pmds` re-exports it under its old names.)

use optane_core::ReadError;
use pmem::PmemEnv;
use simbase::{Addr, Cycles};

/// Which persist operations to drop, counted per operation kind over the
/// wrapper's lifetime (1-indexed: `every_nth = 3` drops the 3rd, 6th, …).
#[derive(Debug, Clone, Copy, Default)]
pub struct ElisionPlan {
    /// Drop every Nth `clwb`/`clflushopt`/`clflush`.
    pub drop_every_nth_flush: Option<u64>,
    /// Drop every Nth `sfence` (`mfence` is never dropped: real code uses
    /// it for visibility, not just persistence).
    pub drop_every_nth_fence: Option<u64>,
}

impl ElisionPlan {
    /// No faults: the wrapper is transparent.
    pub fn none() -> Self {
        ElisionPlan::default()
    }

    /// Drop every Nth flush instruction.
    pub fn drop_flushes(every_nth: u64) -> Self {
        assert!(every_nth > 0, "every_nth is 1-indexed");
        ElisionPlan {
            drop_every_nth_flush: Some(every_nth),
            drop_every_nth_fence: None,
        }
    }

    /// Drop every Nth `sfence`.
    pub fn drop_fences(every_nth: u64) -> Self {
        assert!(every_nth > 0, "every_nth is 1-indexed");
        ElisionPlan {
            drop_every_nth_flush: None,
            drop_every_nth_fence: Some(every_nth),
        }
    }
}

/// A [`PmemEnv`] that forwards everything to `inner` except the persist
/// operations its [`ElisionPlan`] says to drop.
#[derive(Debug)]
pub struct FaultyEnv<E> {
    inner: E,
    plan: ElisionPlan,
    flushes_seen: u64,
    fences_seen: u64,
    flushes_dropped: u64,
    fences_dropped: u64,
}

impl<E: PmemEnv> FaultyEnv<E> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: E, plan: ElisionPlan) -> Self {
        FaultyEnv {
            inner,
            plan,
            flushes_seen: 0,
            fences_seen: 0,
            flushes_dropped: 0,
            fences_dropped: 0,
        }
    }

    /// The wrapped environment.
    pub fn inner(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Unwraps, returning the inner environment.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Flush instructions dropped so far.
    pub fn flushes_dropped(&self) -> u64 {
        self.flushes_dropped
    }

    /// Fences dropped so far.
    pub fn fences_dropped(&self) -> u64 {
        self.fences_dropped
    }

    fn drop_this_flush(&mut self) -> bool {
        self.flushes_seen += 1;
        match self.plan.drop_every_nth_flush {
            Some(n) if self.flushes_seen.is_multiple_of(n) => {
                self.flushes_dropped += 1;
                true
            }
            _ => false,
        }
    }

    fn drop_this_fence(&mut self) -> bool {
        self.fences_seen += 1;
        match self.plan.drop_every_nth_fence {
            Some(n) if self.fences_seen.is_multiple_of(n) => {
                self.fences_dropped += 1;
                true
            }
            _ => false,
        }
    }
}

impl<E: PmemEnv> PmemEnv for FaultyEnv<E> {
    fn load(&mut self, addr: Addr, buf: &mut [u8]) {
        self.inner.load(addr, buf);
    }

    fn try_load(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), ReadError> {
        self.inner.try_load(addr, buf)
    }

    fn store(&mut self, addr: Addr, data: &[u8]) {
        self.inner.store(addr, data);
    }

    fn store_full_line(&mut self, addr: Addr, data: &[u8; 64]) {
        self.inner.store_full_line(addr, data);
    }

    fn nt_store(&mut self, addr: Addr, data: &[u8]) {
        self.inner.nt_store(addr, data);
    }

    fn clwb(&mut self, addr: Addr) {
        if !self.drop_this_flush() {
            self.inner.clwb(addr);
        }
    }

    fn clflushopt(&mut self, addr: Addr) {
        if !self.drop_this_flush() {
            self.inner.clflushopt(addr);
        }
    }

    fn clflush(&mut self, addr: Addr) {
        if !self.drop_this_flush() {
            self.inner.clflush(addr);
        }
    }

    fn sfence(&mut self) {
        if !self.drop_this_fence() {
            self.inner.sfence();
        }
    }

    fn mfence(&mut self) {
        self.inner.mfence();
    }

    fn cas_u64(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        // Never elided: the lock prefix's barrier is inherent to the
        // instruction, not a separately issued persist.
        self.inner.cas_u64(addr, expected, new)
    }

    fn fetch_add_u64(&mut self, addr: Addr, delta: u64) -> u64 {
        self.inner.fetch_add_u64(addr, delta)
    }

    fn alloc(&mut self, len: u64, align: u64) -> Addr {
        self.inner.alloc(len, align)
    }

    fn alloc_volatile(&mut self, len: u64, align: u64) -> Addr {
        self.inner.alloc_volatile(len, align)
    }

    fn compute(&mut self, cycles: Cycles) {
        self.inner.compute(cycles);
    }

    fn now(&self) -> Cycles {
        self.inner.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::HostEnv;

    #[test]
    fn transparent_without_a_plan() {
        let mut env = FaultyEnv::new(HostEnv::new(), ElisionPlan::none());
        let a = env.alloc(64, 64);
        env.store_u64(a, 9);
        env.persist(a, 8);
        assert_eq!(env.load_u64(a), 9);
        assert_eq!(env.flushes_dropped(), 0);
        assert_eq!(env.fences_dropped(), 0);
    }

    #[test]
    fn drops_every_nth_flush() {
        let mut env = FaultyEnv::new(HostEnv::new(), ElisionPlan::drop_flushes(2));
        let a = env.alloc(256, 64);
        for i in 0..4 {
            env.clwb(Addr(a.0 + 64 * i));
        }
        assert_eq!(env.flushes_dropped(), 2);
    }

    #[test]
    fn drops_every_nth_fence_but_never_mfence() {
        let mut env = FaultyEnv::new(HostEnv::new(), ElisionPlan::drop_fences(1));
        env.sfence();
        env.mfence();
        env.sfence();
        assert_eq!(env.fences_dropped(), 2);
    }

    #[test]
    fn try_load_passes_through() {
        let mut env = FaultyEnv::new(HostEnv::new(), ElisionPlan::none());
        let a = env.alloc(64, 64);
        env.store_u64(a, 3);
        let mut buf = [0u8; 8];
        assert_eq!(env.try_load(a, &mut buf), Ok(()));
        assert_eq!(u64::from_le_bytes(buf), 3);
    }
}
