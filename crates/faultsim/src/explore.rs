//! The crash-state explorer.
//!
//! At a persist boundary the ADR model makes every *accepted* write
//! durable and every not-yet-accepted write uncertain: a crash at that
//! instant may or may not have been preceded by the eviction that would
//! have saved it. The legal crash states are therefore exactly the
//! subsets of the uncertain set — `2^n` of them for `n` uncertain lines.
//!
//! [`Explorer::explore`] walks that space: exhaustively when `n` is small
//! enough, otherwise by seeded sampling that always includes the two
//! extreme states (everything lost, everything survived). For each state
//! it materializes a fresh post-crash machine via
//! [`Machine::from_crash_image`] and runs the caller's recovery oracle,
//! accumulating an [`Exploration`] report with a deterministic JSON
//! rendering — same seed, same image, same oracle ⇒ byte-identical
//! output.

use optane_core::{CrashImage, Machine};
use simbase::SplitMix64;

/// Hard ceiling on exhaustive enumeration (2^16 states), whatever the
/// configuration asks for.
const EXHAUSTIVE_HARD_CAP: u32 = 16;

/// Exploration strategy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExplorerConfig {
    /// Enumerate all `2^n` states when the uncertain set has at most this
    /// many lines (clamped to 16).
    pub max_exhaustive_lines: u32,
    /// Number of states to visit when sampling (at least 2: the all-lost
    /// and all-survived extremes are always included).
    pub samples: u64,
    /// Seed for sampled survivor masks.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        ExplorerConfig {
            max_exhaustive_lines: 10,
            samples: 64,
            seed: 0xFA57_0001,
        }
    }
}

/// What a recovery oracle concluded about one crash state.
#[derive(Debug, Clone)]
pub struct StateVerdict {
    /// `true` if every recovery invariant held (structure readable, no
    /// torn node, no wrong values, replay idempotent, …). Losing
    /// unacknowledged data is *not* a failure; returning wrong data or
    /// wedging is.
    pub ok: bool,
    /// Acknowledged (persisted-according-to-the-program) items the
    /// recovered structure lost in this state.
    pub lost_keys: u64,
    /// One-line diagnostic for the report.
    pub detail: String,
}

/// One explored crash state.
#[derive(Debug, Clone)]
pub struct StateOutcome {
    /// State index (in exhaustive mode, bit `i` of the index is uncertain
    /// line `i`'s survival).
    pub index: u64,
    /// Uncertain lines that survived in this state.
    pub survivors: u64,
    /// Uncertain lines lost in this state.
    pub dropped: u64,
    /// The oracle's invariant verdict.
    pub ok: bool,
    /// Acknowledged items lost.
    pub lost_keys: u64,
    /// The oracle's diagnostic.
    pub detail: String,
}

/// The explorer's report over all visited crash states.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Workload label.
    pub workload: String,
    /// Addresses of the uncertain lines, sorted.
    pub uncertain_lines: Vec<u64>,
    /// `true` if every legal crash state was visited.
    pub exhaustive: bool,
    /// States visited.
    pub states_explored: u64,
    /// States where an invariant broke.
    pub failing_states: u64,
    /// States that lost at least one acknowledged item.
    pub lossy_states: u64,
    /// Worst-case acknowledged loss over all states.
    pub max_lost_keys: u64,
    /// Per-state outcomes, in visit order.
    pub outcomes: Vec<StateOutcome>,
}

impl Exploration {
    /// `true` if every visited state recovered with invariants intact.
    pub fn all_states_ok(&self) -> bool {
        self.failing_states == 0
    }

    /// `true` if some visited state lost acknowledged data.
    pub fn any_data_loss(&self) -> bool {
        self.lossy_states > 0
    }

    /// The outcome of the all-survived state (nothing dropped), if it was
    /// visited. It always is: exhaustive mode covers it and sampling pins
    /// it.
    pub fn full_survivor(&self) -> Option<&StateOutcome> {
        self.outcomes.iter().find(|o| o.dropped == 0)
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            escape(&self.workload)
        ));
        s.push_str(&format!("  \"exhaustive\": {},\n", self.exhaustive));
        let lines: Vec<String> = self.uncertain_lines.iter().map(u64::to_string).collect();
        s.push_str(&format!("  \"uncertain_lines\": [{}],\n", lines.join(", ")));
        s.push_str(&format!(
            "  \"states_explored\": {},\n",
            self.states_explored
        ));
        s.push_str(&format!("  \"failing_states\": {},\n", self.failing_states));
        s.push_str(&format!("  \"lossy_states\": {},\n", self.lossy_states));
        s.push_str(&format!("  \"max_lost_keys\": {},\n", self.max_lost_keys));
        s.push_str("  \"outcomes\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"index\": {}, \"survivors\": {}, \"dropped\": {}, \"ok\": {}, \"lost_keys\": {}, \"detail\": \"{}\"}}{}\n",
                o.index,
                o.survivors,
                o.dropped,
                o.ok,
                o.lost_keys,
                escape(&o.detail),
                if i + 1 < self.outcomes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Enumerates crash states and runs recovery oracles against them.
#[derive(Debug, Clone, Copy, Default)]
pub struct Explorer {
    cfg: ExplorerConfig,
}

impl Explorer {
    /// Creates an explorer with the given strategy.
    pub fn new(cfg: ExplorerConfig) -> Self {
        Explorer { cfg }
    }

    /// The survivor masks to visit for `n` uncertain lines, and whether
    /// they cover the whole space.
    fn masks(&self, n: usize) -> (Vec<Vec<bool>>, bool) {
        let bound = self.cfg.max_exhaustive_lines.min(EXHAUSTIVE_HARD_CAP);
        if (n as u32) <= bound {
            let total = 1u64 << n;
            let masks = (0..total)
                .map(|ix| (0..n).map(|i| (ix >> i) & 1 == 1).collect())
                .collect();
            return (masks, true);
        }
        // Sampled: pin both extremes, then seeded random subsets.
        let mut rng = SplitMix64::new(self.cfg.seed);
        let mut masks: Vec<Vec<bool>> = vec![vec![false; n], vec![true; n]];
        for _ in 2..self.cfg.samples.max(2) {
            masks.push((0..n).map(|_| rng.gen_bool(0.5)).collect());
        }
        (masks, false)
    }

    /// Visits the crash states of `image`, materializing a post-crash
    /// machine for each and running `oracle` on it. The oracle also
    /// receives the survivor mask (aligned with `image.uncertain`).
    pub fn explore<F>(&self, workload: &str, image: &CrashImage, mut oracle: F) -> Exploration
    where
        F: FnMut(&mut Machine, &[bool]) -> StateVerdict,
    {
        let n = image.uncertain.len();
        let (masks, exhaustive) = self.masks(n);
        let mut outcomes = Vec::with_capacity(masks.len());
        let mut failing = 0u64;
        let mut lossy = 0u64;
        let mut max_lost = 0u64;
        for (index, mask) in masks.iter().enumerate() {
            let mut m = Machine::from_crash_image(image, mask);
            let verdict = oracle(&mut m, mask);
            let survivors = mask.iter().filter(|&&b| b).count() as u64;
            if !verdict.ok {
                failing += 1;
            }
            if verdict.lost_keys > 0 {
                lossy += 1;
            }
            max_lost = max_lost.max(verdict.lost_keys);
            outcomes.push(StateOutcome {
                index: index as u64,
                survivors,
                dropped: n as u64 - survivors,
                ok: verdict.ok,
                lost_keys: verdict.lost_keys,
                detail: verdict.detail,
            });
        }
        Exploration {
            workload: workload.to_string(),
            uncertain_lines: image.uncertain_lines(),
            exhaustive,
            states_explored: outcomes.len() as u64,
            failing_states: failing,
            lossy_states: lossy,
            max_lost_keys: max_lost,
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, MachineConfig};
    use simbase::Addr;

    /// Two unflushed lines -> a 4-state space; the oracle counts how many
    /// of the two values are visible post-crash.
    fn two_line_image() -> (CrashImage, Addr, Addr) {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let a = m.alloc_pm(128, 64);
        let b = Addr(a.0 + 64);
        m.store_u64(t, a, 1);
        m.store_u64(t, b, 2);
        (m.capture_crash_image(), a, b)
    }

    #[test]
    fn exhaustive_covers_all_subsets() {
        let (img, a, b) = two_line_image();
        let ex = Explorer::new(ExplorerConfig::default());
        let report = ex.explore("two-lines", &img, |m, _| {
            let lost = u64::from(m.peek_u64(a) != 1) + u64::from(m.peek_u64(b) != 2);
            StateVerdict {
                ok: true,
                lost_keys: lost,
                detail: format!("lost {lost}"),
            }
        });
        assert!(report.exhaustive);
        assert_eq!(report.states_explored, 4);
        assert_eq!(
            report.lossy_states, 3,
            "only the all-survive state is loss-free"
        );
        assert_eq!(report.max_lost_keys, 2);
        assert!(report.all_states_ok());
        assert_eq!(report.full_survivor().expect("visited").lost_keys, 0);
    }

    #[test]
    fn sampling_pins_both_extremes() {
        let (img, _, _) = two_line_image();
        let cfg = ExplorerConfig {
            max_exhaustive_lines: 1, // force sampling with n = 2
            samples: 5,
            seed: 42,
        };
        let report = Explorer::new(cfg).explore("sampled", &img, |_, mask| StateVerdict {
            ok: true,
            lost_keys: mask.iter().filter(|&&b| !b).count() as u64,
            detail: String::new(),
        });
        assert!(!report.exhaustive);
        assert_eq!(report.states_explored, 5);
        assert_eq!(report.outcomes[0].dropped, 2, "all-lost extreme first");
        assert_eq!(
            report.outcomes[1].survivors, 2,
            "all-survived extreme second"
        );
    }

    #[test]
    fn exploration_is_deterministic() {
        let run = || {
            let (img, a, _) = two_line_image();
            let cfg = ExplorerConfig {
                max_exhaustive_lines: 1,
                samples: 9,
                seed: 1234,
            };
            Explorer::new(cfg)
                .explore("det", &img, |m, _| StateVerdict {
                    ok: true,
                    lost_keys: u64::from(m.peek_u64(a) != 1),
                    detail: "same".to_string(),
                })
                .to_json()
        };
        assert_eq!(run(), run(), "same seed, same image: byte-identical JSON");
    }

    #[test]
    fn materialized_states_are_independent_machines() {
        let (img, a, b) = two_line_image();
        let ex = Explorer::new(ExplorerConfig::default());
        // The oracle mutates each machine; later states must be unaffected.
        let report = ex.explore("isolated", &img, |m, _| {
            let t = m.spawn(0);
            m.store_u64(t, a, 999);
            m.clwb(t, a);
            m.sfence(t);
            m.power_fail(CrashPolicy::LoseUnflushed);
            StateVerdict {
                ok: m.peek_u64(a) == 999,
                lost_keys: u64::from(m.peek_u64(b) != 2),
                detail: String::new(),
            }
        });
        assert!(report.all_states_ok());
        assert_eq!(report.lossy_states, 2, "b lost exactly when its bit is off");
    }
}
