//! Crash-at-interleaving-point exploration.
//!
//! The plain [`Explorer`](crate::Explorer) answers "what are the legal
//! post-crash states *at this one persist boundary*?" For concurrent
//! workloads that is not enough: the dangerous states live at specific
//! interleavings — thread A has claimed a node, thread B has helped
//! unlink it, nobody has persisted the claim yet. This module sweeps the
//! *other* axis: it replays a deterministic multi-lane workload (an
//! `optane_core::Interleaver` schedule) from scratch, cuts it after every
//! chosen number of executor steps, and hands each cut's crash image to
//! the explorer. The composition visits `(interleaving point) × (crash
//! subset)` states, each judged by a caller-supplied recovery oracle.
//!
//! The workload is supplied as a *replay closure*: given a step budget it
//! must rebuild the machine and program from nothing, run exactly that
//! many executor steps, and return the crash image plus the oracle for
//! that cut (the oracle captures what the program acknowledged before the
//! cut). Replaying from scratch is what makes the sweep sound — every cut
//! sees the exact prefix of the same deterministic schedule, and
//! allocation addresses line up across cuts.
//!
//! Everything is seeded; the same config and workload yield a
//! byte-identical [`InterleaveSweep`] report.

use optane_core::{CrashImage, Machine};
use simbase::SplitMix64;

use crate::explore::{Exploration, Explorer, ExplorerConfig, StateOutcome, StateVerdict};

/// Strategy knobs for the interleaving-point sweep.
#[derive(Debug, Clone, Copy)]
pub struct InterleaveConfig {
    /// Visit at most this many crash points (≥ 2: step 0 and the final
    /// step are always included; interior points are seeded-sampled when
    /// the run is longer than the budget).
    pub max_crash_points: u64,
    /// Seed for interior crash-point sampling.
    pub seed: u64,
    /// Per-point crash-subset exploration strategy.
    pub explorer: ExplorerConfig,
}

impl Default for InterleaveConfig {
    fn default() -> Self {
        InterleaveConfig {
            max_crash_points: 32,
            seed: 0x1A7E_0001,
            explorer: ExplorerConfig::default(),
        }
    }
}

/// One workload replay cut at a crash point, as the replay closure
/// returns it.
pub struct CutRun<F> {
    /// The crash image captured after the cut's last executor step.
    pub image: CrashImage,
    /// Executor steps actually taken (may be below the requested budget
    /// when the workload finished early).
    pub steps_taken: u64,
    /// The recovery oracle for this cut, capturing what the program had
    /// acknowledged by the cut point.
    pub oracle: F,
}

/// The exploration of one crash point.
#[derive(Debug, Clone)]
pub struct CrashPointOutcome {
    /// Executor steps taken before the crash.
    pub steps: u64,
    /// The crash-subset exploration at this point.
    pub exploration: Exploration,
}

/// The full sweep report: every visited crash point with its explored
/// crash states, plus cross-point aggregates.
#[derive(Debug, Clone)]
pub struct InterleaveSweep {
    /// Workload label.
    pub workload: String,
    /// Executor steps in the complete (uncut) run.
    pub total_steps: u64,
    /// Crash states visited over all points.
    pub states_explored: u64,
    /// States where a recovery invariant broke.
    pub failing_states: u64,
    /// States that lost at least one acknowledged item.
    pub lossy_states: u64,
    /// Worst-case acknowledged loss over all states at all points.
    pub max_lost_keys: u64,
    /// Per-point outcomes, in ascending step order.
    pub points: Vec<CrashPointOutcome>,
}

impl InterleaveSweep {
    /// `true` if every crash state at every point recovered intact.
    pub fn all_states_ok(&self) -> bool {
        self.failing_states == 0
    }

    /// `true` if some state at some point lost acknowledged data.
    pub fn any_data_loss(&self) -> bool {
        self.lossy_states > 0
    }

    /// The first failing state in sweep order, with its crash point.
    pub fn first_failure(&self) -> Option<(u64, &StateOutcome)> {
        self.points.iter().find_map(|p| {
            p.exploration
                .outcomes
                .iter()
                .find(|o| !o.ok)
                .map(|o| (p.steps, o))
        })
    }

    /// Deterministic JSON summary (per-point aggregates; per-state detail
    /// stays in memory).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"workload\": \"{}\",\n",
            escape(&self.workload)
        ));
        s.push_str(&format!("  \"total_steps\": {},\n", self.total_steps));
        s.push_str(&format!(
            "  \"states_explored\": {},\n",
            self.states_explored
        ));
        s.push_str(&format!("  \"failing_states\": {},\n", self.failing_states));
        s.push_str(&format!("  \"lossy_states\": {},\n", self.lossy_states));
        s.push_str(&format!("  \"max_lost_keys\": {},\n", self.max_lost_keys));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"steps\": {}, \"uncertain\": {}, \"states\": {}, \"failing\": {}, \"lossy\": {}, \"max_lost_keys\": {}}}{}\n",
                p.steps,
                p.exploration.uncertain_lines.len(),
                p.exploration.states_explored,
                p.exploration.failing_states,
                p.exploration.lossy_states,
                p.exploration.max_lost_keys,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push('}');
        s
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The crash points to visit for a run of `total` steps: always 0 (crash
/// before any work) and `total` (crash at the end-of-run persist
/// boundary), plus either every interior point or a seeded sample of
/// them, ascending and deduplicated.
fn crash_points(total: u64, cfg: &InterleaveConfig) -> Vec<u64> {
    let budget = cfg.max_crash_points.max(2);
    if total < budget {
        return (0..=total).collect();
    }
    let mut points = vec![0, total];
    let mut rng = SplitMix64::new(cfg.seed);
    while (points.len() as u64) < budget {
        points.push(1 + rng.gen_range(total - 1));
    }
    points.sort_unstable();
    points.dedup();
    points
}

/// Sweeps crash points over a deterministic multi-lane workload.
///
/// `replay` is called once with `u64::MAX` to learn the complete run's
/// step count, then once per chosen crash point `k` — it must rebuild
/// the workload from scratch, run exactly `min(k, total)` executor steps
/// (e.g. via `Interleaver::run_steps`), and return the [`CutRun`] for
/// that prefix. Each cut's crash image is explored per
/// [`InterleaveConfig::explorer`] and judged by the cut's oracle.
pub fn sweep_crash_points<F, R>(
    workload: &str,
    cfg: &InterleaveConfig,
    mut replay: R,
) -> InterleaveSweep
where
    F: FnMut(&mut Machine, &[bool]) -> StateVerdict,
    R: FnMut(u64) -> CutRun<F>,
{
    let probe = replay(u64::MAX);
    let total = probe.steps_taken;
    let explorer = Explorer::new(cfg.explorer);
    let mut points = Vec::new();
    let mut states = 0u64;
    let mut failing = 0u64;
    let mut lossy = 0u64;
    let mut max_lost = 0u64;
    for k in crash_points(total, cfg) {
        let mut cut = replay(k);
        debug_assert_eq!(cut.steps_taken, k, "replay must honor the step budget");
        let label = format!("{workload}@{k}");
        let exploration = explorer.explore(&label, &cut.image, &mut cut.oracle);
        states += exploration.states_explored;
        failing += exploration.failing_states;
        lossy += exploration.lossy_states;
        max_lost = max_lost.max(exploration.max_lost_keys);
        points.push(CrashPointOutcome {
            steps: k,
            exploration,
        });
    }
    InterleaveSweep {
        workload: workload.to_string(),
        total_steps: total,
        states_explored: states,
        failing_states: failing,
        lossy_states: lossy,
        max_lost_keys: max_lost,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::{Interleaver, MachineConfig, SchedPolicy, Step};
    use simbase::Addr;

    const LANES: usize = 2;
    const OPS_PER_LANE: u64 = 4;

    /// Two lanes each persist a run of values into their own cachelines,
    /// acknowledging each value after its persist barrier (`correct`) or
    /// before it (`!correct` — the seeded bug the sweep must catch).
    fn replay(
        budget: u64,
        correct: bool,
    ) -> CutRun<impl FnMut(&mut Machine, &[bool]) -> StateVerdict> {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let tids: Vec<_> = (0..LANES).map(|_| m.spawn(0)).collect();
        let base = m.alloc_pm(64 * (LANES as u64) * OPS_PER_LANE, 64);
        let line = move |lane: usize, i: u64| Addr(base.0 + 64 * (lane as u64 * OPS_PER_LANE + i));
        // Per-lane phase cursors: each op is two steps (store, persist).
        let mut issued = [0u64; LANES];
        let mut persisted = [false; LANES];
        let mut acked: Vec<(usize, u64)> = Vec::new();
        let report = Interleaver::new(SchedPolicy::RoundRobin).run_steps(
            &mut m,
            &tids,
            &mut |mm: &mut Machine, tid, lane: usize| {
                if issued[lane] == OPS_PER_LANE {
                    return Step::Done;
                }
                let i = issued[lane];
                let a = line(lane, i);
                if !persisted[lane] {
                    mm.store_u64(tid, a, 100 + i);
                    persisted[lane] = true;
                    if !correct {
                        acked.push((lane, i)); // ack before durability: bug
                    }
                } else {
                    mm.clwb(tid, a);
                    mm.sfence(tid);
                    persisted[lane] = false;
                    issued[lane] += 1;
                    if correct {
                        acked.push((lane, i));
                    }
                }
                Step::Ran
            },
            budget,
        );
        let image = m.capture_crash_image();
        CutRun {
            image,
            steps_taken: report.total_steps,
            oracle: move |pm: &mut Machine, _mask: &[bool]| {
                let lost = acked
                    .iter()
                    .filter(|&&(lane, i)| pm.peek_u64(line(lane, i)) != 100 + i)
                    .count() as u64;
                StateVerdict {
                    ok: lost == 0,
                    lost_keys: lost,
                    detail: format!("lost {lost} acked values"),
                }
            },
        }
    }

    #[test]
    fn correct_workload_survives_every_point_and_state() {
        let cfg = InterleaveConfig::default();
        let sweep = sweep_crash_points("persist-then-ack", &cfg, |k| replay(k, true));
        assert_eq!(sweep.total_steps, (LANES as u64) * OPS_PER_LANE * 2);
        assert_eq!(sweep.points.len(), sweep.total_steps as usize + 1);
        assert!(sweep.all_states_ok(), "{}", sweep.to_json());
        assert!(!sweep.any_data_loss());
    }

    #[test]
    fn ack_before_persist_is_caught_at_some_interleaving_point() {
        let cfg = InterleaveConfig::default();
        let sweep = sweep_crash_points("ack-then-persist", &cfg, |k| replay(k, false));
        assert!(!sweep.all_states_ok(), "the seeded bug must be found");
        let (steps, state) = sweep.first_failure().expect("a failing state");
        assert!(steps > 0, "step 0 has nothing acked yet");
        assert!(state.lost_keys > 0);
    }

    #[test]
    fn sweep_is_deterministic_and_samples_when_capped() {
        let cfg = InterleaveConfig {
            max_crash_points: 5,
            ..InterleaveConfig::default()
        };
        let a = sweep_crash_points("det", &cfg, |k| replay(k, true)).to_json();
        let b = sweep_crash_points("det", &cfg, |k| replay(k, true)).to_json();
        assert_eq!(a, b, "same config, byte-identical report");
        let sweep = sweep_crash_points("det", &cfg, |k| replay(k, true));
        assert!(sweep.points.len() <= 5);
        assert_eq!(sweep.points.first().map(|p| p.steps), Some(0));
        assert_eq!(
            sweep.points.last().map(|p| p.steps),
            Some(sweep.total_steps)
        );
    }
}
