//! Layered fault injection and systematic crash-state exploration.
//!
//! The simulator's baseline crash model (`Machine::power_fail`) answers
//! one question: *what survives this particular crash?* This crate asks
//! the stronger ones a robustness story needs:
//!
//! 1. **Fault injection** ([`plan`]): a [`FaultPlan`] describes one fault
//!    class at one layer of the stack — flush/fence elision in software
//!    ([`ElisionPlan`]/[`FaultyEnv`]), WPQ drop and partial drain at the
//!    iMC, XPBuffer partial drain on the DIMM, and media poison
//!    (uncorrectable errors) at the bottom. A [`FaultRegistry`] arms a
//!    whole schedule of them on a machine deterministically.
//! 2. **Crash-state exploration** ([`explore`]): at any persist boundary
//!    the set of legal post-crash states is *every subset* of the
//!    not-yet-accepted (crash-uncertain) lines. The [`Explorer`]
//!    enumerates them — exhaustively when the uncertain set is small,
//!    seeded-sampled (always including the all-lost and all-survived
//!    extremes) when it is not — materializes a fresh machine for each,
//!    and runs a caller-supplied recovery oracle against it.
//! 3. **Crash-at-interleaving-point sweeps** ([`interleave`]): for
//!    concurrent workloads driven by the deterministic executor, the
//!    dangerous crash states live at specific interleavings. The sweep
//!    replays the workload from scratch, cuts it after every chosen
//!    executor step, and explores each cut's crash states — covering the
//!    `(interleaving point) × (crash subset)` product.
//!
//! The explorer is deliberately generic over the oracle (a closure from
//! post-crash [`Machine`] to a [`StateVerdict`]): datastore-specific
//! invariants (no lost acknowledged key, no torn node, log replay
//! idempotent) live with the datastores, not here. `repro faultsim` wires
//! the two together and cross-validates `pmcheck`'s static verdicts
//! against the explorer's ground truth.
//!
//! Everything is seeded: the same plan + seed over the same workload
//! yields a byte-identical fault schedule and exploration report.

#![forbid(unsafe_code)]

pub mod elide;
pub mod explore;
pub mod interleave;
pub mod plan;

pub use elide::{ElisionPlan, FaultyEnv};
pub use explore::{Exploration, Explorer, ExplorerConfig, StateOutcome, StateVerdict};
pub use interleave::{
    sweep_crash_points, CrashPointOutcome, CutRun, InterleaveConfig, InterleaveSweep,
};
pub use plan::{
    FaultPlan, FaultRegistry, Layer, MediaPoisonPlan, WpqDropPlan, WpqPartialDrainPlan,
    XpBufferPartialDrainPlan,
};

// The machine-level fault vocabulary the plans are built from, re-exported
// so fault-injection users need only this crate.
pub use optane_core::{CrashImage, FaultHooks, FaultStats, PartialDrain, ReadError, ScrubOutcome};
