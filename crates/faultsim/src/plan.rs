//! Fault plans: one injectable fault class per plan, tagged with the
//! layer of the stack it corrupts.
//!
//! Hardware plans arm [`FaultHooks`] on the machine (or poison media
//! lines directly); the software plan ([`ElisionPlan`]) is applied by
//! wrapping the environment in a [`FaultyEnv`](crate::FaultyEnv) instead
//! — eliding a flush is a program bug, not a machine state, so `arm` is a
//! no-op for it. A [`FaultRegistry`] carries a whole schedule of plans
//! and arms them in registration order.

use optane_core::{FaultHooks, Machine, PartialDrain};
use simbase::Addr;

use crate::elide::ElisionPlan;

/// Which layer of the stack a fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// The program's own persist ordering (elided flushes/fences).
    Software,
    /// The iMC write-pending queue.
    Imc,
    /// The on-DIMM write-combining buffer.
    XpBuffer,
    /// The 3D-XPoint media cells.
    Media,
}

impl Layer {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Software => "software",
            Layer::Imc => "imc",
            Layer::XpBuffer => "xpbuffer",
            Layer::Media => "media",
        }
    }
}

/// One injectable fault class.
pub trait FaultPlan {
    /// Stable name for reports and schedules.
    fn name(&self) -> &'static str;

    /// The layer this fault corrupts.
    fn layer(&self) -> Layer;

    /// Arms the fault on `m`. Software-layer plans are no-ops here (they
    /// are applied by wrapping the environment instead).
    fn arm(&self, m: &mut Machine);

    /// One deterministic line describing the fault's parameters, for the
    /// fault schedule in reports.
    fn schedule_entry(&self) -> String;
}

/// The iMC acknowledges every Nth PM write but silently discards it.
#[derive(Debug, Clone, Copy)]
pub struct WpqDropPlan {
    /// 1-indexed drop period.
    pub every_nth: u64,
}

impl FaultPlan for WpqDropPlan {
    fn name(&self) -> &'static str {
        "wpq-drop"
    }

    fn layer(&self) -> Layer {
        Layer::Imc
    }

    fn arm(&self, m: &mut Machine) {
        let mut hooks = m.fault_hooks().clone();
        hooks.wpq_drop_every_nth = Some(self.every_nth);
        m.arm_faults(hooks);
    }

    fn schedule_entry(&self) -> String {
        format!("wpq-drop(every_nth={})", self.every_nth)
    }
}

/// At power failure, lines still draining from the WPQ are lost (and
/// their interrupted media writes leave poisoned lines).
#[derive(Debug, Clone, Copy)]
pub struct WpqPartialDrainPlan {
    /// Per-line loss probability.
    pub drop_fraction: f64,
    /// Seed for victim selection.
    pub seed: u64,
}

impl FaultPlan for WpqPartialDrainPlan {
    fn name(&self) -> &'static str {
        "wpq-partial-drain"
    }

    fn layer(&self) -> Layer {
        Layer::Imc
    }

    fn arm(&self, m: &mut Machine) {
        let mut hooks = m.fault_hooks().clone();
        hooks.wpq_partial_drain = Some(PartialDrain {
            drop_fraction: self.drop_fraction,
            seed: self.seed,
        });
        m.arm_faults(hooks);
    }

    fn schedule_entry(&self) -> String {
        format!(
            "wpq-partial-drain(drop_fraction={}, seed={:#x})",
            self.drop_fraction, self.seed
        )
    }
}

/// At power failure, XPLines resident in the on-DIMM write-combining
/// buffer are interrupted mid media-write with the given probability.
#[derive(Debug, Clone, Copy)]
pub struct XpBufferPartialDrainPlan {
    /// Per-XPLine loss probability.
    pub drop_fraction: f64,
    /// Seed for victim selection.
    pub seed: u64,
}

impl FaultPlan for XpBufferPartialDrainPlan {
    fn name(&self) -> &'static str {
        "xpbuffer-partial-drain"
    }

    fn layer(&self) -> Layer {
        Layer::XpBuffer
    }

    fn arm(&self, m: &mut Machine) {
        let mut hooks = m.fault_hooks().clone();
        hooks.xpbuffer_partial_drain = Some(PartialDrain {
            drop_fraction: self.drop_fraction,
            seed: self.seed,
        });
        m.arm_faults(hooks);
    }

    fn schedule_entry(&self) -> String {
        format!(
            "xpbuffer-partial-drain(drop_fraction={}, seed={:#x})",
            self.drop_fraction, self.seed
        )
    }
}

/// Uncorrectable errors injected into specific media lines.
#[derive(Debug, Clone)]
pub struct MediaPoisonPlan {
    /// Addresses of the lines to poison (any address within each line).
    pub lines: Vec<u64>,
}

impl FaultPlan for MediaPoisonPlan {
    fn name(&self) -> &'static str {
        "media-poison"
    }

    fn layer(&self) -> Layer {
        Layer::Media
    }

    fn arm(&self, m: &mut Machine) {
        for &line in &self.lines {
            m.poison_line(Addr(line));
        }
    }

    fn schedule_entry(&self) -> String {
        let lines: Vec<String> = self.lines.iter().map(|l| format!("{l:#x}")).collect();
        format!("media-poison(lines=[{}])", lines.join(", "))
    }
}

impl FaultPlan for ElisionPlan {
    fn name(&self) -> &'static str {
        "flush-fence-elision"
    }

    fn layer(&self) -> Layer {
        Layer::Software
    }

    fn arm(&self, _m: &mut Machine) {
        // Software fault: applied by wrapping the environment in a
        // `FaultyEnv`, not by machine state.
    }

    fn schedule_entry(&self) -> String {
        format!(
            "flush-fence-elision(drop_every_nth_flush={:?}, drop_every_nth_fence={:?})",
            self.drop_every_nth_flush, self.drop_every_nth_fence
        )
    }
}

/// An ordered schedule of fault plans.
#[derive(Default)]
pub struct FaultRegistry {
    plans: Vec<Box<dyn FaultPlan>>,
}

impl FaultRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FaultRegistry::default()
    }

    /// Adds a plan to the schedule (builder style).
    pub fn with(mut self, plan: Box<dyn FaultPlan>) -> Self {
        self.plans.push(plan);
        self
    }

    /// Adds a plan to the schedule.
    pub fn register(&mut self, plan: Box<dyn FaultPlan>) {
        self.plans.push(plan);
    }

    /// Arms every registered plan on `m`, in registration order.
    pub fn arm_all(&self, m: &mut Machine) {
        for plan in &self.plans {
            plan.arm(m);
        }
    }

    /// Disarms all machine-level hooks armed by this (or any) registry.
    /// Media poison is stored cell damage, not a hook, and stays.
    pub fn disarm(m: &mut Machine) {
        m.arm_faults(FaultHooks::none());
    }

    /// The deterministic fault schedule: one line per plan, in order.
    pub fn schedule(&self) -> Vec<String> {
        self.plans
            .iter()
            .map(|p| format!("{}: {}", p.layer().name(), p.schedule_entry()))
            .collect()
    }

    /// Returns the number of registered plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Returns `true` if no plans are registered.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1))
    }

    #[test]
    fn plans_compose_into_one_hook_set() {
        let mut m = machine();
        let reg = FaultRegistry::new()
            .with(Box::new(WpqDropPlan { every_nth: 5 }))
            .with(Box::new(XpBufferPartialDrainPlan {
                drop_fraction: 0.5,
                seed: 9,
            }));
        reg.arm_all(&mut m);
        let hooks = m.fault_hooks();
        assert_eq!(hooks.wpq_drop_every_nth, Some(5));
        assert!(hooks.xpbuffer_partial_drain.is_some());
        assert!(hooks.wpq_partial_drain.is_none());
        FaultRegistry::disarm(&mut m);
        assert!(!m.fault_hooks().is_armed());
    }

    #[test]
    fn media_poison_plan_poisons_on_arm() {
        let mut m = machine();
        let a = m.alloc_pm(64, 64);
        let reg = FaultRegistry::new().with(Box::new(MediaPoisonPlan { lines: vec![a.0] }));
        reg.arm_all(&mut m);
        assert!(m.line_poisoned(a));
    }

    #[test]
    fn schedule_is_deterministic_text() {
        let reg = FaultRegistry::new()
            .with(Box::new(WpqDropPlan { every_nth: 3 }))
            .with(Box::new(ElisionPlan::drop_flushes(2)));
        let sched = reg.schedule();
        assert_eq!(sched.len(), 2);
        assert_eq!(sched[0], "imc: wpq-drop(every_nth=3)");
        assert!(sched[1].starts_with("software: flush-fence-elision"));
    }
}
