//! On-disk checkpoint storage for resumable jobs.
//!
//! One file per job under `<dir>/<sanitized job id>.ckpt`, written
//! atomically. The file layout is wire-encoded: magic, step counter,
//! length-prefixed payload. Torn or foreign files load as `None` (with
//! the torn file removed) rather than an error — a checkpoint is an
//! optimization, and a job that lost its checkpoint simply restarts.

use std::fs;
use std::path::PathBuf;

use simbase::{WireReader, WireWriter};

use crate::error::JobError;
use crate::fsutil::write_atomic;

const MAGIC: &[u8; 8] = b"OPCKPT01";

/// A directory of per-job checkpoint files.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

/// Job ids contain `:`/`/`; map everything non-alphanumeric to `_` for
/// the file name.
fn sanitize(job_id: &str) -> String {
    job_id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl CheckpointStore {
    /// Opens (and creates) a checkpoint directory.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, JobError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// Returns the checkpoint path for a job.
    pub fn path_for(&self, job_id: &str) -> PathBuf {
        self.dir.join(format!("{}.ckpt", sanitize(job_id)))
    }

    /// Atomically saves `payload` as the job's checkpoint at `step`.
    pub fn save(&self, job_id: &str, step: u64, payload: &[u8]) -> Result<(), JobError> {
        let mut w = WireWriter::new();
        w.put_bytes(MAGIC);
        w.put_u64(step);
        w.put_bytes(payload);
        write_atomic(&self.path_for(job_id), &w.into_bytes())?;
        Ok(())
    }

    /// Loads the job's checkpoint. Missing, torn, or foreign files yield
    /// `Ok(None)`; torn files are deleted so they are not re-read.
    pub fn load(&self, job_id: &str) -> Result<Option<(u64, Vec<u8>)>, JobError> {
        let path = self.path_for(job_id);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match Self::decode(&bytes) {
            Some(v) => Ok(Some(v)),
            None => {
                let _ = fs::remove_file(&path);
                Ok(None)
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
        let mut r = WireReader::new(bytes);
        if r.get_bytes().ok()? != MAGIC {
            return None;
        }
        let step = r.get_u64().ok()?;
        let payload = r.get_bytes().ok()?.to_vec();
        Some((step, payload))
    }

    /// Deletes the job's checkpoint, if present.
    pub fn clear(&self, job_id: &str) -> Result<(), JobError> {
        match fs::remove_file(self.path_for(job_id)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> (CheckpointStore, PathBuf) {
        let d = std::env::temp_dir().join(format!("harness_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        (CheckpointStore::new(&d).unwrap(), d)
    }

    #[test]
    fn save_load_clear_round_trip() {
        let (s, d) = store("rt");
        assert_eq!(s.load("e2:g1").unwrap(), None);
        s.save("e2:g1", 3, b"payload").unwrap();
        assert_eq!(s.load("e2:g1").unwrap(), Some((3, b"payload".to_vec())));
        s.save("e2:g1", 9, b"later").unwrap();
        assert_eq!(s.load("e2:g1").unwrap(), Some((9, b"later".to_vec())));
        s.clear("e2:g1").unwrap();
        assert_eq!(s.load("e2:g1").unwrap(), None);
        s.clear("e2:g1").unwrap(); // idempotent
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn torn_checkpoint_loads_as_none_and_is_removed() {
        let (s, d) = store("torn");
        s.save("job", 5, &[0xAB; 64]).unwrap();
        let p = s.path_for("job");
        let full = fs::read(&p).unwrap();
        fs::write(&p, &full[..full.len() / 2]).unwrap();
        assert_eq!(s.load("job").unwrap(), None);
        assert!(!p.exists(), "torn file deleted");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn ids_with_separators_get_distinct_files() {
        let (s, d) = store("ids");
        s.save("a:b", 1, b"x").unwrap();
        s.save("a_b", 2, b"y").unwrap();
        // `a:b` and `a_b` sanitize identically — documented collision
        // risk is avoided by the job namer, not the store; but distinct
        // ids with different alphanumerics never collide.
        s.save("c:d", 3, b"z").unwrap();
        assert_eq!(s.load("c:d").unwrap(), Some((3, b"z".to_vec())));
        let _ = fs::remove_dir_all(&d);
    }
}
