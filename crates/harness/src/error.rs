//! The typed job-failure taxonomy.

use std::fmt;
use std::time::Duration;

/// Why a job attempt failed. Every failure mode the supervisor can
/// observe maps to exactly one variant, so manifests and reports can
/// classify failures without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job panicked; the payload message is preserved.
    Panic(String),
    /// The job exceeded its deadline (wall clock, or the simulated-cycle
    /// bound for jobs that report simulated progress).
    Timeout {
        /// How long the attempt had been running when it was killed.
        elapsed: Duration,
        /// The wall-clock deadline it exceeded, when one was configured.
        /// `None` means the attempt was killed by the simulated-cycle
        /// watchdog (or a cancel), with no wall-clock bound set — there
        /// is no wall deadline to report in that case.
        deadline: Option<Duration>,
    },
    /// The job ran but its cross-validation (pmcheck, faultsim) found a
    /// mismatch between checker verdicts and ground truth.
    Validation(String),
    /// Reading or writing artifacts/checkpoints failed.
    Io(String),
    /// The job reported a typed domain failure (bad parameters, …).
    Failed(String),
}

impl JobError {
    /// Stable machine-readable kind tag used in manifests.
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic(_) => "panic",
            JobError::Timeout { .. } => "timeout",
            JobError::Validation(_) => "validation",
            JobError::Io(_) => "io",
            JobError::Failed(_) => "failed",
        }
    }

    /// Human-readable detail without the kind prefix.
    pub fn detail(&self) -> String {
        match self {
            JobError::Panic(m)
            | JobError::Validation(m)
            | JobError::Io(m)
            | JobError::Failed(m) => m.clone(),
            JobError::Timeout {
                elapsed,
                deadline: Some(deadline),
            } => format!(
                "exceeded {:.1}s deadline after {:.1}s",
                deadline.as_secs_f64(),
                elapsed.as_secs_f64()
            ),
            JobError::Timeout {
                elapsed,
                deadline: None,
            } => format!("timed out after {:.1}s", elapsed.as_secs_f64()),
        }
    }

    /// Reassembles a `JobError` from its manifest `(kind, detail)` pair.
    /// Timeouts lose their exact durations across a round trip; the kind
    /// and message are what resume logic and reports rely on.
    pub fn from_kind(kind: &str, detail: &str) -> Self {
        match kind {
            "panic" => JobError::Panic(detail.to_string()),
            "timeout" => JobError::Timeout {
                elapsed: Duration::ZERO,
                deadline: None,
            },
            "validation" => JobError::Validation(detail.to_string()),
            "io" => JobError::Io(detail.to_string()),
            _ => JobError::Failed(detail.to_string()),
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

impl std::error::Error for JobError {}

impl From<std::io::Error> for JobError {
    fn from(e: std::io::Error) -> Self {
        JobError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let all = [
            JobError::Panic("p".into()),
            JobError::Timeout {
                elapsed: Duration::from_secs(2),
                deadline: Some(Duration::from_secs(1)),
            },
            JobError::Validation("v".into()),
            JobError::Io("i".into()),
            JobError::Failed("f".into()),
        ];
        let kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["panic", "timeout", "validation", "io", "failed"]);
        for e in &all {
            let rt = JobError::from_kind(e.kind(), &e.detail());
            assert_eq!(rt.kind(), e.kind());
        }
    }

    #[test]
    fn timeout_without_deadline_does_not_fabricate_one() {
        // Regression: a simulated-cycle timeout has no wall-clock
        // deadline; the message used to claim the elapsed time WAS the
        // deadline ("exceeded 3.0s deadline after 3.0s").
        let e = JobError::Timeout {
            elapsed: Duration::from_secs(3),
            deadline: None,
        };
        let d = e.detail();
        assert_eq!(d, "timed out after 3.0s");
        assert!(!d.contains("deadline"), "no fabricated deadline: {d}");
    }

    #[test]
    fn display_includes_kind_and_detail() {
        let e = JobError::Panic("boom".into());
        let s = e.to_string();
        assert!(s.contains("panic") && s.contains("boom"), "{s}");
    }
}
