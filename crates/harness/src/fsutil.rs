//! Crash-safe file writes.

use std::fs;
use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes go to a `*.tmp`
/// sibling first and are renamed into place, so a crash mid-write can
/// never leave a torn file at `path` — readers see either the old
/// contents or the new ones, nothing in between.
///
/// The temporary name is derived from the target name (not a random
/// one), so a crashed writer's leftovers are bounded to one stale `.tmp`
/// per target, overwritten by the next successful write.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("harness_fsutil_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces_atomically() {
        let d = scratch_dir("replace");
        let p = d.join("report.json");
        write_atomic(&p, b"one").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"one");
        write_atomic(&p, b"two").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"two");
        // No stray temp file remains.
        assert!(!tmp_path(&p).exists());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn creates_missing_parent_directories() {
        let d = scratch_dir("parents");
        let p = d.join("a/b/c.txt");
        write_atomic(&p, b"deep").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"deep");
        let _ = fs::remove_dir_all(&d);
    }
}
