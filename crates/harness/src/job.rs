//! The job abstraction: what the scheduler runs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::checkpoint::CheckpointStore;
use crate::error::JobError;

/// What a successful job attempt produced.
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// Files the job wrote (paths relative to the output directory or
    /// absolute), recorded in the manifest.
    pub artifacts: Vec<PathBuf>,
    /// One-line (or short multi-line) human summary for the final report.
    pub summary: String,
    /// `false` when the job ran to completion but its cross-validation
    /// failed; the scheduler converts this to [`JobError::Validation`].
    pub validated: bool,
}

impl JobOutput {
    /// A validated output with the given summary.
    pub fn ok(summary: impl Into<String>) -> Self {
        JobOutput {
            artifacts: Vec::new(),
            summary: summary.into(),
            validated: true,
        }
    }

    /// Adds an artifact path.
    pub fn with_artifact(mut self, p: impl Into<PathBuf>) -> Self {
        self.artifacts.push(p.into());
        self
    }
}

/// Per-attempt context handed to a running job.
///
/// Carries the deterministic seed for this `(job, attempt)`, the
/// cooperative-cancellation flag the watchdog sets when a deadline
/// passes, the simulated-clock progress cell the watchdog reads, and the
/// checkpoint store for resumable jobs.
pub struct JobCtx {
    /// The job's id (for checkpoint naming and logs).
    pub job_id: String,
    /// 1-based attempt number.
    pub attempt: u32,
    /// Seed derived from `(base seed, job id, attempt)`.
    pub seed: u64,
    cancel: Arc<AtomicBool>,
    sim_now: Arc<AtomicU64>,
    checkpoints: Option<CheckpointStore>,
}

impl JobCtx {
    /// Creates a context. The scheduler builds these; tests may too.
    pub fn new(
        job_id: impl Into<String>,
        attempt: u32,
        seed: u64,
        cancel: Arc<AtomicBool>,
        sim_now: Arc<AtomicU64>,
        checkpoints: Option<CheckpointStore>,
    ) -> Self {
        JobCtx {
            job_id: job_id.into(),
            attempt,
            seed,
            cancel,
            sim_now,
            checkpoints,
        }
    }

    /// A detached context for running a job outside the scheduler (unit
    /// tests, one-off invocations): never cancelled, no checkpoints.
    pub fn detached(job_id: impl Into<String>, seed: u64) -> Self {
        JobCtx::new(
            job_id,
            1,
            seed,
            Arc::new(AtomicBool::new(false)),
            Arc::new(AtomicU64::new(0)),
            None,
        )
    }

    /// `true` once the watchdog has asked this attempt to stop (deadline
    /// exceeded). Long-running jobs should poll this at natural
    /// boundaries (between data points, every few thousand ops) and bail
    /// out with any error — the supervisor records the attempt as timed
    /// out regardless.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Reports the job's current simulated time (cycles). The watchdog
    /// compares this against the simulated-cycle deadline, if one is
    /// configured.
    pub fn report_sim_time(&self, cycles: u64) {
        self.sim_now.store(cycles, Ordering::Relaxed);
    }

    /// Saves a checkpoint payload for this job (atomic write). `step` is
    /// a monotonically increasing progress marker; [`JobCtx::load_checkpoint`]
    /// returns the payload with the highest step.
    pub fn save_checkpoint(&self, step: u64, payload: &[u8]) -> Result<(), JobError> {
        match &self.checkpoints {
            Some(store) => store.save(&self.job_id, step, payload),
            None => Ok(()), // detached runs silently skip checkpointing
        }
    }

    /// Loads this job's most recent checkpoint, if any survives from an
    /// interrupted run.
    pub fn load_checkpoint(&self) -> Result<Option<(u64, Vec<u8>)>, JobError> {
        match &self.checkpoints {
            Some(store) => store.load(&self.job_id),
            None => Ok(None),
        }
    }

    /// Removes this job's checkpoint (called by jobs after a completed
    /// run so stale state cannot leak into a later resume; the scheduler
    /// also clears checkpoints of completed jobs).
    pub fn clear_checkpoint(&self) -> Result<(), JobError> {
        match &self.checkpoints {
            Some(store) => store.clear(&self.job_id),
            None => Ok(()),
        }
    }
}

/// A schedulable unit of work.
///
/// Implementations must be `Send + Sync`: the scheduler runs jobs on
/// worker threads and may retry them. A job must be *re-runnable* — a
/// retried attempt starts from the job's own checkpoint or from scratch,
/// and must not depend on leftovers from a failed attempt (artifact
/// writes go through [`crate::write_atomic`], so torn files cannot
/// exist).
pub trait Job: Send + Sync {
    /// Stable, unique id (e.g. `"e2:g1"`). Used for manifest keys,
    /// checkpoint names, seed derivation, and selection.
    fn id(&self) -> String;

    /// Runs one attempt.
    fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_ctx_never_cancels_and_skips_checkpoints() {
        let ctx = JobCtx::detached("t", 42);
        assert!(!ctx.cancelled());
        assert_eq!(ctx.seed, 42);
        ctx.save_checkpoint(1, b"ignored").unwrap();
        assert_eq!(ctx.load_checkpoint().unwrap(), None);
    }
}
