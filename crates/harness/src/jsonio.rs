//! A minimal JSON reader/writer for the run manifest.
//!
//! The workspace is dependency-free by policy (no serde); the manifest is
//! small, machine-written, and machine-read, so a compact recursive
//! parser over a [`JsonValue`] tree is all that is required. Object keys
//! keep insertion order on write (via `Vec`) so manifests render stably;
//! lookups are linear, which is fine at manifest scale (dozens of jobs).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; the manifest stores integers
    /// that fit exactly).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a `u64`, if it is a non-negative integral
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        let close = "  ".repeat(depth);
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a human-readable error with the
    /// byte offset on malformed input.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number '{s}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "short \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let v = JsonValue::Object(vec![
            ("name".into(), JsonValue::String("e2:g1".into())),
            ("attempts".into(), JsonValue::Number(2.0)),
            ("ok".into(), JsonValue::Bool(true)),
            ("err".into(), JsonValue::Null),
            (
                "artifacts".into(),
                JsonValue::Array(vec![
                    JsonValue::String("a.csv".into()),
                    JsonValue::String("b.csv".into()),
                ]),
            ),
            (
                "nested".into(),
                JsonValue::Object(vec![("x".into(), JsonValue::Number(-1.5))]),
            ),
        ]);
        let text = v.to_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = JsonValue::String("line1\nline2 \"quoted\" \\ tab\t".into());
        let text = v.to_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "tru", "{} extra"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_do_type_checks() {
        let v = JsonValue::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("n").and_then(JsonValue::as_str), None);
    }

    #[test]
    fn integers_render_without_decimal_point() {
        let v = JsonValue::Number(42.0);
        assert_eq!(v.to_pretty().trim(), "42");
    }
}
