//! Supervised experiment scheduler.
//!
//! `repro all` replays the paper's whole evaluation matrix. As one long
//! sequential script, a single panic, hang, or mid-write crash loses
//! every result after it. This crate turns the matrix into a supervised,
//! resumable job system:
//!
//! - **Jobs.** Each experiment is a [`Job`]: a named, self-contained unit
//!   that produces artifacts and a summary. Jobs are independent and may
//!   run on a worker pool ([`Scheduler`]).
//! - **Isolation.** Every attempt runs under `catch_unwind`; a panic
//!   becomes a typed [`JobError::Panic`] record, not a dead run.
//! - **Deadlines.** A watchdog enforces a wall-clock deadline per job
//!   (and a simulated-cycle bound for jobs that report progress); a hung
//!   job is abandoned and recorded as [`JobError::Timeout`] while the
//!   rest of the matrix completes.
//! - **Retry.** Failed attempts are retried with exponential backoff, and
//!   each attempt's RNG seed is derived deterministically from
//!   `(base seed, job id, attempt)`.
//! - **Checkpoint/resume.** Long jobs periodically save state through
//!   [`CheckpointStore`]; the run [`Manifest`] (written atomically after
//!   every state change) records per-job status so a killed run resumes
//!   by skipping completed jobs and restarting incomplete ones from their
//!   last checkpoint.
//!
//! The crate is deliberately simulator-agnostic: it knows nothing about
//! machines or experiments, only jobs, errors, files, and time. The
//! `experiments` crate supplies the job implementations.

#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod error;
pub mod fsutil;
pub mod job;
pub mod jsonio;
pub mod manifest;
pub mod scheduler;

pub use checkpoint::CheckpointStore;
pub use error::JobError;
pub use fsutil::write_atomic;
pub use job::{Job, JobCtx, JobOutput};
pub use jsonio::JsonValue;
pub use manifest::{JobRecord, JobStatus, Manifest};
pub use scheduler::{derive_seed, RetryPolicy, RunConfig, RunReport, Scheduler};
