//! The run manifest: durable per-job progress for `results/manifest.json`.
//!
//! The scheduler rewrites the manifest (atomically) after every job state
//! change, so at any instant the file on disk describes exactly which
//! jobs completed, which failed and why, and which were in flight. A
//! later `repro … --resume` loads it, skips completed jobs whose
//! artifacts still exist, and re-runs the rest.
//!
//! Wall-clock durations are recorded for humans but deliberately ignored
//! when comparing runs: the *results* of a resumed run must be
//! byte-identical to an uninterrupted one, while its timings never are.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::error::JobError;
use crate::fsutil::write_atomic;
use crate::jsonio::JsonValue;

/// Manifest format version (bumped on incompatible layout changes; a
/// mismatched manifest is ignored on resume rather than misread).
pub const MANIFEST_VERSION: u64 = 1;

/// Terminal or in-flight state of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Queued but not yet started (present so a killed run's manifest
    /// still lists the full matrix).
    Pending,
    /// Started and not finished when the manifest was written — on
    /// resume this means "the run was killed mid-job; start over from
    /// the job's checkpoint".
    Running,
    /// Completed and validated.
    Done,
    /// Failed after all retries; carries the final error.
    Failed(JobError),
}

impl JobStatus {
    fn tag(&self) -> &'static str {
        match self {
            JobStatus::Pending => "pending",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed(_) => "failed",
        }
    }
}

/// One job's durable record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Current status.
    pub status: JobStatus,
    /// Attempts consumed so far (including the failed ones).
    pub attempts: u32,
    /// Wall-clock milliseconds of the finishing attempt (0 until done).
    pub wall_ms: u64,
    /// Artifacts the job produced.
    pub artifacts: Vec<PathBuf>,
    /// The job's one-line summary (empty until done).
    pub summary: String,
}

impl JobRecord {
    fn new() -> Self {
        JobRecord {
            status: JobStatus::Pending,
            attempts: 0,
            wall_ms: 0,
            artifacts: Vec::new(),
            summary: String::new(),
        }
    }
}

/// The durable run manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Base seed of the run; a resume under a different seed discards
    /// the manifest (results would not merge deterministically).
    pub base_seed: u64,
    /// Scale tag (`smoke` / `default` / `full`) — must also match on
    /// resume.
    pub scale: String,
    /// Job records, keyed by job id (sorted for stable rendering).
    pub jobs: BTreeMap<String, JobRecord>,
}

impl Manifest {
    /// Creates an empty manifest for a new run.
    pub fn new(base_seed: u64, scale: impl Into<String>) -> Self {
        Manifest {
            base_seed,
            scale: scale.into(),
            jobs: BTreeMap::new(),
        }
    }

    /// Ensures a record exists for `job_id` and returns it mutably.
    pub fn record_mut(&mut self, job_id: &str) -> &mut JobRecord {
        self.jobs
            .entry(job_id.to_string())
            .or_insert_with(JobRecord::new)
    }

    /// Returns `true` if the job completed and every recorded artifact
    /// still exists under `out_dir` (a deleted artifact forces a re-run).
    pub fn is_complete(&self, job_id: &str, out_dir: &Path) -> bool {
        match self.jobs.get(job_id) {
            Some(r) if r.status == JobStatus::Done => r.artifacts.iter().all(|a| {
                let p = if a.is_absolute() {
                    a.clone()
                } else {
                    out_dir.join(a)
                };
                p.exists()
            }),
            _ => false,
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        let jobs = self
            .jobs
            .iter()
            .map(|(id, r)| {
                let mut fields = vec![
                    (
                        "status".to_string(),
                        JsonValue::String(r.status.tag().into()),
                    ),
                    ("attempts".to_string(), JsonValue::Number(r.attempts as f64)),
                    ("wall_ms".to_string(), JsonValue::Number(r.wall_ms as f64)),
                    (
                        "artifacts".to_string(),
                        JsonValue::Array(
                            r.artifacts
                                .iter()
                                .map(|p| JsonValue::String(p.display().to_string()))
                                .collect(),
                        ),
                    ),
                    ("summary".to_string(), JsonValue::String(r.summary.clone())),
                ];
                if let JobStatus::Failed(e) = &r.status {
                    fields.push((
                        "error_kind".to_string(),
                        JsonValue::String(e.kind().to_string()),
                    ));
                    fields.push(("error".to_string(), JsonValue::String(e.detail())));
                }
                (id.clone(), JsonValue::Object(fields))
            })
            .collect();
        JsonValue::Object(vec![
            (
                "version".to_string(),
                JsonValue::Number(MANIFEST_VERSION as f64),
            ),
            (
                "base_seed".to_string(),
                JsonValue::Number(self.base_seed as f64),
            ),
            ("scale".to_string(), JsonValue::String(self.scale.clone())),
            ("jobs".to_string(), JsonValue::Object(jobs)),
        ])
        .to_pretty()
    }

    /// Parses a manifest previously written by [`Manifest::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text)?;
        let version = v
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("missing version")?;
        if version != MANIFEST_VERSION {
            return Err(format!("manifest version {version} != {MANIFEST_VERSION}"));
        }
        let base_seed = v
            .get("base_seed")
            .and_then(JsonValue::as_u64)
            .ok_or("missing base_seed")?;
        let scale = v
            .get("scale")
            .and_then(JsonValue::as_str)
            .ok_or("missing scale")?
            .to_string();
        let mut jobs = BTreeMap::new();
        for (id, jr) in v
            .get("jobs")
            .and_then(JsonValue::as_object)
            .ok_or("missing jobs")?
        {
            let status_tag = jr
                .get("status")
                .and_then(JsonValue::as_str)
                .ok_or("missing status")?;
            let status = match status_tag {
                "pending" => JobStatus::Pending,
                "running" => JobStatus::Running,
                "done" => JobStatus::Done,
                "failed" => JobStatus::Failed(JobError::from_kind(
                    jr.get("error_kind")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("failed"),
                    jr.get("error").and_then(JsonValue::as_str).unwrap_or(""),
                )),
                other => return Err(format!("unknown status '{other}'")),
            };
            let artifacts = jr
                .get("artifacts")
                .and_then(JsonValue::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|a| a.as_str().map(PathBuf::from))
                .collect();
            jobs.insert(
                id.clone(),
                JobRecord {
                    status,
                    attempts: jr.get("attempts").and_then(JsonValue::as_u64).unwrap_or(0) as u32,
                    wall_ms: jr.get("wall_ms").and_then(JsonValue::as_u64).unwrap_or(0),
                    artifacts,
                    summary: jr
                        .get("summary")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                },
            );
        }
        Ok(Manifest {
            base_seed,
            scale,
            jobs,
        })
    }

    /// Atomically writes the manifest to `path`.
    pub fn save(&self, path: &Path) -> Result<(), JobError> {
        write_atomic(path, self.to_json().as_bytes())?;
        Ok(())
    }

    /// Loads a manifest, returning `None` when the file is missing,
    /// unparsable, or from an incompatible run (wrong version) — resume
    /// then degrades to a fresh run.
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        Manifest::from_json(&text).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(0xABCD, "smoke");
        {
            let r = m.record_mut("e0:g1");
            r.status = JobStatus::Done;
            r.attempts = 1;
            r.wall_ms = 123;
            r.artifacts = vec![PathBuf::from("e0_g1.csv")];
            r.summary = "ok".into();
        }
        {
            let r = m.record_mut("e7");
            r.status = JobStatus::Failed(JobError::Panic("index out of bounds".into()));
            r.attempts = 3;
        }
        {
            let r = m.record_mut("mixes:g2");
            r.status = JobStatus::Running;
            r.attempts = 1;
        }
        m
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let m = sample();
        let text = m.to_json();
        let parsed = Manifest::from_json(&text).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn completion_requires_existing_artifacts() {
        let dir = std::env::temp_dir().join(format!("harness_manifest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let m = sample();
        // Artifact missing → not complete.
        assert!(!m.is_complete("e0:g1", &dir));
        std::fs::write(dir.join("e0_g1.csv"), b"x,y\n").unwrap();
        assert!(m.is_complete("e0:g1", &dir));
        // Failed and running jobs are never complete.
        assert!(!m.is_complete("e7", &dir));
        assert!(!m.is_complete("mixes:g2", &dir));
        assert!(!m.is_complete("unknown", &dir));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_load_round_trip_and_corrupt_load_is_none() {
        let dir = std::env::temp_dir().join(format!("harness_manifest_io_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let m = sample();
        m.save(&path).unwrap();
        assert_eq!(Manifest::load(&path), Some(m));
        std::fs::write(&path, b"{ torn").unwrap();
        assert_eq!(Manifest::load(&path), None);
        assert_eq!(Manifest::load(&dir.join("absent.json")), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
