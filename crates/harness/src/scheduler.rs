//! The supervised scheduler: worker pool, panic isolation, watchdog
//! deadlines, retry with backoff, and manifest-driven resume.
//!
//! Threading model: each running job gets its own OS thread whose body is
//! wrapped in `catch_unwind`, so a panicking experiment becomes a typed
//! [`JobError::Panic`] instead of tearing the process down. Rust cannot
//! kill a thread, so deadlines are enforced cooperatively: the supervisor
//! sets the attempt's cancel flag when the wall- or simulated-clock
//! budget is exhausted, waits a short grace period, and — if the job
//! still refuses to yield — *abandons* the thread (records a
//! [`JobError::Timeout`], frees the worker slot, and lets the detached
//! thread die with the process). A well-behaved job polls
//! [`JobCtx::cancelled`] at natural boundaries and exits promptly.
//!
//! All scheduling decisions are deterministic functions of the job list
//! and configuration; only *timing* (and therefore failure of hung jobs)
//! depends on the wall clock. Seeds are derived per `(job, attempt)` so a
//! retried attempt replays the exact same stimulus.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::checkpoint::CheckpointStore;
use crate::error::JobError;
use crate::job::{Job, JobCtx, JobOutput};
use crate::manifest::{JobStatus, Manifest};

/// Derives the seed for one `(base, job, attempt)` triple. FNV-1a over
/// the job id folded with the base seed and attempt, then finalized with
/// a SplitMix64-style mix so adjacent attempts land far apart.
pub fn derive_seed(base_seed: u64, job_id: &str, attempt: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in job_id.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let mut z = base_seed
        .wrapping_add(h)
        .wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(attempt as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Retry policy for failed attempts.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per job (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before attempt N+1 is `base_backoff * 2^(N-1)`.
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::from_millis(100),
        }
    }
}

/// Ceiling on the exponential backoff shift: caps the multiplier at
/// `2^16` (base * 65536). Anything below 32 also keeps `1u32 << shift`
/// well-defined; the `checked_shl` below defends in depth so a future
/// edit to this constant past 31 degrades to saturation instead of a
/// debug-build overflow panic.
const MAX_BACKOFF_SHIFT: u32 = 16;

impl RetryPolicy {
    /// Backoff to apply after the given (1-based) failed attempt.
    /// Saturates: any attempt count up to `u32::MAX` yields the capped
    /// multiplier, never an overflowing shift.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(MAX_BACKOFF_SHIFT);
        let factor = 1u32.checked_shl(shift).unwrap_or(u32::MAX);
        self.base_backoff.saturating_mul(factor)
    }

    /// Whether a job that has consumed `attempts` attempts may retry.
    /// Timeouts are not retried: a hung job would hang again and each
    /// abandoned attempt leaks a thread for the process lifetime.
    pub fn should_retry(&self, attempts: u32, err: &JobError) -> bool {
        !matches!(err, JobError::Timeout { .. }) && attempts < self.max_attempts
    }
}

/// Scheduler configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Worker slots (>= 1).
    pub parallel: usize,
    /// Wall-clock deadline per attempt; `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Simulated-cycle deadline per attempt (compared against
    /// [`JobCtx::report_sim_time`] values); `None` = unlimited.
    pub sim_deadline: Option<u64>,
    /// Retry policy.
    pub retry: RetryPolicy,
    /// Base seed; per-attempt seeds derive from it.
    pub base_seed: u64,
    /// Scale tag recorded in the manifest (`smoke`/`default`/`full`).
    pub scale: String,
    /// Output directory (manifest + artifacts live here).
    pub out_dir: PathBuf,
    /// Resume from `out_dir/manifest.json` when compatible.
    pub resume: bool,
    /// Suppress panic backtraces on worker threads (keeps expected-panic
    /// tests and injected-fault runs quiet). The panic payload is still
    /// captured into [`JobError::Panic`].
    pub quiet_panics: bool,
}

impl RunConfig {
    /// A config with sensible defaults for `out_dir`.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        RunConfig {
            parallel: 1,
            deadline: None,
            sim_deadline: None,
            retry: RetryPolicy::default(),
            base_seed: 42,
            scale: "default".to_string(),
            out_dir: out_dir.into(),
            resume: false,
            quiet_panics: true,
        }
    }

    fn manifest_path(&self) -> PathBuf {
        self.out_dir.join("manifest.json")
    }

    fn checkpoint_dir(&self) -> PathBuf {
        self.out_dir.join("checkpoints")
    }
}

/// Outcome of one finished job (after retries).
#[derive(Debug)]
pub struct JobResult {
    /// The job id.
    pub job_id: String,
    /// `Ok` with the final output, or the last attempt's error.
    pub outcome: Result<JobOutput, JobError>,
    /// Attempts consumed.
    pub attempts: u32,
    /// `true` when the job was skipped because a compatible manifest
    /// already recorded it as done.
    pub skipped: bool,
}

/// The whole run's report.
#[derive(Debug)]
pub struct RunReport {
    /// Per-job results in the order jobs were submitted.
    pub jobs: Vec<JobResult>,
}

impl RunReport {
    /// Number of jobs that completed (including skipped-as-done).
    pub fn completed(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// Jobs that failed, with their final errors.
    pub fn failures(&self) -> Vec<(&str, &JobError)> {
        self.jobs
            .iter()
            .filter_map(|j| j.outcome.as_ref().err().map(|e| (j.job_id.as_str(), e)))
            .collect()
    }

    /// `true` when every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.outcome.is_ok())
    }
}

/// One queued attempt.
struct PendingAttempt {
    job_index: usize,
    attempt: u32,
    /// Earliest instant this attempt may start (backoff).
    not_before: Instant,
}

/// One in-flight attempt.
struct RunningAttempt {
    job_index: usize,
    attempt: u32,
    started: Instant,
    cancel: Arc<AtomicBool>,
    sim_now: Arc<AtomicU64>,
    result: Arc<Mutex<Option<Result<JobOutput, JobError>>>>,
    done: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
    /// Set once the watchdog has cancelled this attempt; when the grace
    /// period expires the attempt is abandoned.
    cancelled_at: Option<Instant>,
}

/// How long a cancelled attempt gets to acknowledge the cancel flag
/// before its thread is abandoned.
const CANCEL_GRACE: Duration = Duration::from_millis(500);

/// Supervisor poll interval.
const POLL: Duration = Duration::from_millis(10);

/// The supervised scheduler.
pub struct Scheduler {
    cfg: RunConfig,
}

impl Scheduler {
    /// Creates a scheduler with the given config.
    pub fn new(cfg: RunConfig) -> Self {
        Scheduler { cfg }
    }

    /// Runs all `jobs` to completion (success, typed failure, or
    /// timeout). Never panics because of a job; never aborts the matrix
    /// because one job failed.
    pub fn run(&self, jobs: Vec<Box<dyn Job>>) -> Result<RunReport, JobError> {
        let cfg = &self.cfg;
        std::fs::create_dir_all(&cfg.out_dir)?;
        let checkpoints = CheckpointStore::new(cfg.checkpoint_dir())?;

        // Load or start the manifest. A manifest from a different seed or
        // scale cannot be merged deterministically — start fresh.
        let mut manifest = if cfg.resume {
            match Manifest::load(&cfg.manifest_path()) {
                Some(m) if m.base_seed == cfg.base_seed && m.scale == cfg.scale => m,
                Some(_) => {
                    eprintln!("[harness] manifest is from a different seed/scale; starting fresh");
                    Manifest::new(cfg.base_seed, cfg.scale.clone())
                }
                None => Manifest::new(cfg.base_seed, cfg.scale.clone()),
            }
        } else {
            Manifest::new(cfg.base_seed, cfg.scale.clone())
        };

        // Register the full matrix up front so a killed run's manifest
        // shows what was planned, and decide which jobs to skip.
        let mut results: Vec<Option<JobResult>> = Vec::with_capacity(jobs.len());
        let mut queue: VecDeque<PendingAttempt> = VecDeque::new();
        let now0 = Instant::now();
        for (i, job) in jobs.iter().enumerate() {
            let id = job.id();
            if cfg.resume && manifest.is_complete(&id, &cfg.out_dir) {
                let rec = &manifest.jobs[&id];
                results.push(Some(JobResult {
                    job_id: id,
                    outcome: Ok(JobOutput {
                        artifacts: rec.artifacts.clone(),
                        summary: rec.summary.clone(),
                        validated: true,
                    }),
                    attempts: rec.attempts,
                    skipped: true,
                }));
                continue;
            }
            // (Re)queue: reset any stale running/failed record.
            let rec = manifest.record_mut(&id);
            rec.status = JobStatus::Pending;
            rec.attempts = 0;
            results.push(None);
            queue.push_back(PendingAttempt {
                job_index: i,
                attempt: 1,
                not_before: now0,
            });
        }
        manifest.save(&cfg.manifest_path())?;

        let jobs: Vec<Arc<dyn Job>> = jobs.into_iter().map(Arc::from).collect();
        let mut running: Vec<RunningAttempt> = Vec::new();
        let parallel = cfg.parallel.max(1);

        while !queue.is_empty() || !running.is_empty() {
            // Launch attempts while slots are free. Backoff-delayed
            // attempts rotate to the back so ready work is not starved.
            let mut rotated = 0;
            while running.len() < parallel && rotated < queue.len() {
                let Some(p) = queue.pop_front() else { break };
                if p.not_before > Instant::now() {
                    queue.push_back(p);
                    rotated += 1;
                    continue;
                }
                let job = Arc::clone(&jobs[p.job_index]);
                let id = job.id();
                let rec = manifest.record_mut(&id);
                rec.status = JobStatus::Running;
                rec.attempts = p.attempt;
                manifest.save(&cfg.manifest_path())?;

                let cancel = Arc::new(AtomicBool::new(false));
                let sim_now = Arc::new(AtomicU64::new(0));
                let result: Arc<Mutex<Option<Result<JobOutput, JobError>>>> =
                    Arc::new(Mutex::new(None));
                let done = Arc::new(AtomicBool::new(false));
                let ctx = JobCtx::new(
                    id.clone(),
                    p.attempt,
                    derive_seed(cfg.base_seed, &id, p.attempt),
                    Arc::clone(&cancel),
                    Arc::clone(&sim_now),
                    Some(checkpoints.clone()),
                );
                if cfg.quiet_panics {
                    install_quiet_panic_hook();
                }
                let worker_result = Arc::clone(&result);
                let worker_done = Arc::clone(&done);
                let handle = thread::Builder::new()
                    .name(format!("job-{id}"))
                    .spawn(move || {
                        let out = catch_unwind(AssertUnwindSafe(|| job.run(&ctx)));
                        let out = match out {
                            Ok(r) => r,
                            Err(payload) => Err(JobError::Panic(panic_message(payload.as_ref()))),
                        };
                        *worker_result.lock().expect("result lock") = Some(out);
                        worker_done.store(true, Ordering::SeqCst);
                    })
                    .map_err(|e| JobError::Io(format!("spawn worker: {e}")))?;
                running.push(RunningAttempt {
                    job_index: p.job_index,
                    attempt: p.attempt,
                    started: Instant::now(),
                    cancel,
                    sim_now,
                    result,
                    done,
                    handle: Some(handle),
                    cancelled_at: None,
                });
            }

            // Poll running attempts.
            let mut i = 0;
            while i < running.len() {
                let finished = running[i].done.load(Ordering::SeqCst);
                let elapsed = running[i].started.elapsed();
                if finished {
                    let mut r = running.swap_remove(i);
                    if let Some(h) = r.handle.take() {
                        let _ = h.join();
                    }
                    let outcome =
                        r.result
                            .lock()
                            .expect("result lock")
                            .take()
                            .unwrap_or_else(|| {
                                Err(JobError::Failed("worker exited without a result".into()))
                            });
                    // A run that finished after cancellation still counts
                    // as a timeout: its output may be truncated.
                    let outcome = if r.cancelled_at.is_some() {
                        Err(timeout_error(cfg, elapsed))
                    } else {
                        match outcome {
                            Ok(out) if !out.validated => Err(JobError::Validation(format!(
                                "validation failed: {}",
                                out.summary
                            ))),
                            other => other,
                        }
                    };
                    self.settle(
                        &jobs,
                        &mut manifest,
                        &checkpoints,
                        &mut queue,
                        &mut results,
                        r.job_index,
                        r.attempt,
                        elapsed,
                        outcome,
                    )?;
                    continue;
                }

                // Watchdog: wall-clock and simulated-clock deadlines.
                let over_wall = cfg.deadline.is_some_and(|d| elapsed > d);
                let over_sim = cfg
                    .sim_deadline
                    .is_some_and(|d| running[i].sim_now.load(Ordering::Relaxed) > d);
                if (over_wall || over_sim) && running[i].cancelled_at.is_none() {
                    running[i].cancel.store(true, Ordering::SeqCst);
                    running[i].cancelled_at = Some(Instant::now());
                }
                if let Some(t) = running[i].cancelled_at {
                    if t.elapsed() > CANCEL_GRACE {
                        // Abandon the thread: it cannot be killed, but it
                        // no longer owns a worker slot. It dies with the
                        // process.
                        let r = running.swap_remove(i);
                        drop(r.handle);
                        self.settle(
                            &jobs,
                            &mut manifest,
                            &checkpoints,
                            &mut queue,
                            &mut results,
                            r.job_index,
                            r.attempt,
                            elapsed,
                            Err(timeout_error(cfg, elapsed)),
                        )?;
                        continue;
                    }
                }
                i += 1;
            }

            if !running.is_empty() || !queue.is_empty() {
                thread::sleep(POLL);
            }
        }

        let report = RunReport {
            jobs: results
                .into_iter()
                .map(|r| r.expect("every job settled"))
                .collect(),
        };
        manifest.save(&cfg.manifest_path())?;
        Ok(report)
    }

    /// Records a finished attempt: success and final failures go to the
    /// manifest and results; retryable failures re-queue with backoff.
    #[allow(clippy::too_many_arguments)]
    fn settle(
        &self,
        jobs: &[Arc<dyn Job>],
        manifest: &mut Manifest,
        checkpoints: &CheckpointStore,
        queue: &mut VecDeque<PendingAttempt>,
        results: &mut [Option<JobResult>],
        job_index: usize,
        attempt: u32,
        elapsed: Duration,
        outcome: Result<JobOutput, JobError>,
    ) -> Result<(), JobError> {
        let id = jobs[job_index].id();
        match outcome {
            Ok(out) => {
                let rec = manifest.record_mut(&id);
                rec.status = JobStatus::Done;
                rec.attempts = attempt;
                rec.wall_ms = elapsed.as_millis() as u64;
                rec.artifacts = out.artifacts.clone();
                rec.summary = out.summary.clone();
                checkpoints.clear(&id)?;
                results[job_index] = Some(JobResult {
                    job_id: id,
                    outcome: Ok(out),
                    attempts: attempt,
                    skipped: false,
                });
            }
            Err(err) => {
                if self.cfg.retry.should_retry(attempt, &err) {
                    eprintln!(
                        "[harness] {id} attempt {attempt} failed ({err}); retrying with backoff"
                    );
                    queue.push_back(PendingAttempt {
                        job_index,
                        attempt: attempt + 1,
                        not_before: Instant::now() + self.cfg.retry.backoff_after(attempt),
                    });
                } else {
                    eprintln!("[harness] {id} failed after {attempt} attempt(s): {err}");
                    let rec = manifest.record_mut(&id);
                    rec.status = JobStatus::Failed(err.clone());
                    rec.attempts = attempt;
                    rec.wall_ms = elapsed.as_millis() as u64;
                    results[job_index] = Some(JobResult {
                        job_id: id,
                        outcome: Err(err),
                        attempts: attempt,
                        skipped: false,
                    });
                }
            }
        }
        manifest.save(&self.cfg.manifest_path())
    }
}

fn timeout_error(cfg: &RunConfig, elapsed: Duration) -> JobError {
    // A sim-deadline (or cancel-grace) kill has no wall-clock deadline;
    // reporting `elapsed` as the deadline fabricated one.
    JobError::Timeout {
        elapsed,
        deadline: cfg.deadline,
    }
}

/// Replaces the default panic hook with one that only prints panics from
/// non-worker threads. The hook is process-global, so it is installed at
/// most once; worker panics are still captured into [`JobError::Panic`]
/// via `catch_unwind`, they just stop spraying backtraces over the
/// progress output.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_worker = thread::current()
                .name()
                .is_some_and(|n| n.starts_with("job-"));
            if !is_worker {
                previous(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("harness_sched_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    struct OkJob(String);
    impl Job for OkJob {
        fn id(&self) -> String {
            self.0.clone()
        }
        fn run(&self, _ctx: &JobCtx) -> Result<JobOutput, JobError> {
            Ok(JobOutput::ok(format!("{} done", self.0)))
        }
    }

    struct PanicJob;
    impl Job for PanicJob {
        fn id(&self) -> String {
            "panics".into()
        }
        fn run(&self, _ctx: &JobCtx) -> Result<JobOutput, JobError> {
            panic!("injected panic for testing");
        }
    }

    struct HangJob;
    impl Job for HangJob {
        fn id(&self) -> String {
            "hangs".into()
        }
        fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError> {
            // Cooperative hang: spins until cancelled, so the test does
            // not leak a thread past its own lifetime.
            while !ctx.cancelled() {
                thread::sleep(Duration::from_millis(5));
            }
            Ok(JobOutput::ok("woke up"))
        }
    }

    /// Fails on attempt 1, succeeds on attempt 2.
    struct FlakyJob(Arc<AtomicU32>);
    impl Job for FlakyJob {
        fn id(&self) -> String {
            "flaky".into()
        }
        fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError> {
            self.0.fetch_add(1, Ordering::SeqCst);
            if ctx.attempt == 1 {
                Err(JobError::Failed("transient".into()))
            } else {
                Ok(JobOutput::ok(format!("attempt {}", ctx.attempt)))
            }
        }
    }

    struct InvalidJob;
    impl Job for InvalidJob {
        fn id(&self) -> String {
            "invalid".into()
        }
        fn run(&self, _ctx: &JobCtx) -> Result<JobOutput, JobError> {
            Ok(JobOutput {
                artifacts: vec![],
                summary: "model disagrees with table".into(),
                validated: false,
            })
        }
    }

    #[test]
    fn panic_is_isolated_and_other_jobs_complete() {
        let out = scratch("panic");
        let mut cfg = RunConfig::new(&out);
        cfg.parallel = 2;
        cfg.retry.max_attempts = 1;
        let report = Scheduler::new(cfg)
            .run(vec![
                Box::new(OkJob("a".into())),
                Box::new(PanicJob),
                Box::new(OkJob("b".into())),
            ])
            .unwrap();
        assert_eq!(report.completed(), 2);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "panics");
        assert_eq!(failures[0].1.kind(), "panic");
        assert!(failures[0].1.detail().contains("injected panic"));
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn hang_times_out_with_typed_error() {
        let out = scratch("hang");
        let mut cfg = RunConfig::new(&out);
        cfg.deadline = Some(Duration::from_millis(50));
        cfg.retry.max_attempts = 3; // timeouts must NOT be retried
        let report = Scheduler::new(cfg)
            .run(vec![Box::new(HangJob), Box::new(OkJob("ok".into()))])
            .unwrap();
        assert_eq!(report.completed(), 1);
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1.kind(), "timeout");
        // Only one attempt was made.
        assert_eq!(report.jobs[0].attempts, 1);
        let _ = std::fs::remove_dir_all(&out);
    }

    /// Reports runaway simulated progress, then hangs cooperatively.
    struct SimHangJob;
    impl Job for SimHangJob {
        fn id(&self) -> String {
            "sim-hangs".into()
        }
        fn run(&self, ctx: &JobCtx) -> Result<JobOutput, JobError> {
            ctx.report_sim_time(u64::MAX);
            while !ctx.cancelled() {
                thread::sleep(Duration::from_millis(5));
            }
            Ok(JobOutput::ok("woke up"))
        }
    }

    #[test]
    fn sim_deadline_timeout_reports_no_wall_deadline() {
        // Regression: with only `sim_deadline` set, the timeout error used
        // to fabricate a wall-clock deadline equal to the elapsed time.
        let out = scratch("simdl");
        let mut cfg = RunConfig::new(&out);
        cfg.deadline = None;
        cfg.sim_deadline = Some(1_000);
        cfg.retry.max_attempts = 3;
        let report = Scheduler::new(cfg).run(vec![Box::new(SimHangJob)]).unwrap();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        match &failures[0].1 {
            JobError::Timeout { deadline, .. } => {
                assert_eq!(*deadline, None, "no wall deadline was configured")
            }
            other => panic!("expected timeout, got {other}"),
        }
        assert!(
            !failures[0].1.detail().contains("deadline"),
            "message must not claim a deadline: {}",
            failures[0].1.detail()
        );
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn transient_failure_retries_and_succeeds() {
        let out = scratch("retry");
        let mut cfg = RunConfig::new(&out);
        cfg.retry = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
        };
        let calls = Arc::new(AtomicU32::new(0));
        let report = Scheduler::new(cfg)
            .run(vec![Box::new(FlakyJob(Arc::clone(&calls)))])
            .unwrap();
        assert!(report.all_ok());
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(report.jobs[0].attempts, 2);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn unvalidated_output_becomes_validation_error() {
        let out = scratch("valid");
        let mut cfg = RunConfig::new(&out);
        cfg.retry.max_attempts = 1;
        let report = Scheduler::new(cfg).run(vec![Box::new(InvalidJob)]).unwrap();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1.kind(), "validation");
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn resume_skips_completed_jobs() {
        let out = scratch("resume");
        // First run: "a" completes, write its (empty) artifact list.
        let cfg1 = RunConfig::new(&out);
        let report1 = Scheduler::new(cfg1)
            .run(vec![Box::new(OkJob("a".into()))])
            .unwrap();
        assert!(report1.all_ok());
        // Second run with resume: "a" skipped, "b" runs.
        let mut cfg2 = RunConfig::new(&out);
        cfg2.resume = true;
        let report2 = Scheduler::new(cfg2)
            .run(vec![
                Box::new(OkJob("a".into())),
                Box::new(OkJob("b".into())),
            ])
            .unwrap();
        assert!(report2.all_ok());
        assert!(report2.jobs[0].skipped, "completed job must be skipped");
        assert!(!report2.jobs[1].skipped);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn resume_under_different_seed_reruns_everything() {
        let out = scratch("reseed");
        let cfg1 = RunConfig::new(&out);
        Scheduler::new(cfg1)
            .run(vec![Box::new(OkJob("a".into()))])
            .unwrap();
        let mut cfg2 = RunConfig::new(&out);
        cfg2.resume = true;
        cfg2.base_seed = 7; // different seed → manifest discarded
        let report = Scheduler::new(cfg2)
            .run(vec![Box::new(OkJob("a".into()))])
            .unwrap();
        assert!(!report.jobs[0].skipped);
        let _ = std::fs::remove_dir_all(&out);
    }

    #[test]
    fn derive_seed_is_stable_and_varies_by_attempt_and_job() {
        assert_eq!(derive_seed(42, "e0", 1), derive_seed(42, "e0", 1));
        assert_ne!(derive_seed(42, "e0", 1), derive_seed(42, "e0", 2));
        assert_ne!(derive_seed(42, "e0", 1), derive_seed(42, "e1", 1));
        assert_ne!(derive_seed(42, "e0", 1), derive_seed(43, "e0", 1));
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(100),
        };
        assert_eq!(p.backoff_after(1), Duration::from_millis(100));
        assert_eq!(p.backoff_after(2), Duration::from_millis(200));
        assert_eq!(p.backoff_after(5), Duration::from_millis(1_600));
        // Cap: 100ms * 2^16 from attempt 17 on.
        let cap = Duration::from_millis(100) * (1 << 16);
        assert_eq!(p.backoff_after(17), cap);
        assert_eq!(p.backoff_after(18), cap);
    }

    #[test]
    fn backoff_at_high_attempt_counts_saturates_instead_of_overflowing() {
        // Regression: `1u32 << shift` would overflow (debug-panic) once
        // attempts push shift >= 32; the clamp + checked shift must keep
        // every attempt count finite and equal to the cap.
        let p = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_millis(100),
        };
        let cap = p.backoff_after(17);
        for attempt in [32, 33, 34, 64, 1_000, 1_000_000, u32::MAX] {
            assert_eq!(p.backoff_after(attempt), cap, "attempt {attempt}");
        }
        // Huge base backoff also saturates rather than panicking.
        let big = RetryPolicy {
            max_attempts: u32::MAX,
            base_backoff: Duration::from_secs(u64::MAX / 2),
        };
        assert!(big.backoff_after(u32::MAX) >= big.backoff_after(1));
    }
}
