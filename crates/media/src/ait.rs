//! Address indirection table (AIT) cache.
//!
//! Optane DIMMs remap XPLine addresses through an on-media indirection table
//! for wear levelling. The DIMM controller caches recently used AIT entries;
//! prior work (LENS, §3.6 of the paper) locates the capacity of that cache
//! at roughly 16 MB of address coverage. Accesses outside the cached
//! coverage pay an extra media lookup, producing the sharp latency increase
//! the paper observes when the working set exceeds 16 MB.
//!
//! The cache is modelled as a set-associative tag array over fixed-size
//! address granules with per-set LRU replacement.

use simbase::{Addr, HitMiss};

/// Bytes of address space covered by one AIT entry.
pub const AIT_GRANULE_BYTES: u64 = 4096;

/// Set-associative AIT tag cache.
#[derive(Debug, Clone)]
pub struct AitCache {
    sets: Vec<Vec<AitEntry>>,
    ways: usize,
    hits: u64,
    misses: u64,
    tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct AitEntry {
    tag: u64,
    last_use: u64,
}

impl AitCache {
    /// Creates a cache covering `coverage_bytes` of address space with the
    /// given associativity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into at least one set.
    pub fn new(coverage_bytes: u64, ways: usize) -> Self {
        let entries = (coverage_bytes / AIT_GRANULE_BYTES).max(1) as usize;
        assert!(ways > 0, "AIT associativity must be positive");
        let num_sets = (entries / ways).max(1);
        AitCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            hits: 0,
            misses: 0,
            tick: 0,
        }
    }

    /// Looks up the AIT entry covering `addr`, inserting it on a miss.
    ///
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let granule = addr.0 / AIT_GRANULE_BYTES;
        let num_sets = self.sets.len() as u64;
        let set_idx = (granule % num_sets) as usize;
        let tag = granule / num_sets;
        let ways = self.ways;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];

        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.last_use = tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < ways {
            set.push(AitEntry {
                tag,
                last_use: tick,
            });
        } else if let Some(victim) = set.iter_mut().min_by_key(|e| e.last_use) {
            // The set is at capacity here, so a victim always exists.
            *victim = AitEntry {
                tag,
                last_use: tick,
            };
        }
        false
    }

    /// Returns the hit/miss counters observed so far.
    pub fn counters(&self) -> HitMiss {
        HitMiss::of(self.hits, self.misses)
    }

    /// Clears statistics only; cached entries (and their LRU ordering)
    /// stay warm.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.reset_stats();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let mut ait = AitCache::new(16 << 20, 16);
        assert!(!ait.access(Addr(0)));
        assert!(ait.access(Addr(0)));
        assert!(ait.access(Addr(100))); // same granule
        assert_eq!(ait.counters(), HitMiss::of(2, 1));
    }

    #[test]
    fn working_set_within_coverage_hits_steadily() {
        let coverage = 1 << 20; // 1 MB for a fast test
        let mut ait = AitCache::new(coverage, 16);
        let wss = coverage / 2;
        // Warm up.
        for a in (0..wss).step_by(AIT_GRANULE_BYTES as usize) {
            ait.access(Addr(a));
        }
        let misses_before = ait.counters().misses;
        // Second pass should be all hits.
        for a in (0..wss).step_by(AIT_GRANULE_BYTES as usize) {
            assert!(ait.access(Addr(a)));
        }
        let misses_after = ait.counters().misses;
        assert_eq!(misses_before, misses_after);
    }

    #[test]
    fn working_set_beyond_coverage_thrashes() {
        let coverage = 1 << 20;
        let mut ait = AitCache::new(coverage, 16);
        let wss = coverage * 4;
        // Two sequential passes over 4x the coverage: LRU within each set
        // evicts entries before reuse, so the second pass keeps missing.
        for _ in 0..2 {
            for a in (0..wss).step_by(AIT_GRANULE_BYTES as usize) {
                ait.access(Addr(a));
            }
        }
        let HitMiss { hits, misses } = ait.counters();
        assert!(
            misses > hits * 10,
            "expected thrashing, got hits={hits} misses={misses}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut ait = AitCache::new(1 << 20, 8);
        ait.access(Addr(0));
        ait.reset();
        assert_eq!(ait.counters(), HitMiss::new());
        assert!(!ait.access(Addr(0)));
    }
}
