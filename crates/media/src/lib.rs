//! 3D-XPoint media model for the simulated Optane DIMM.
//!
//! The media is the bottom of the hierarchy the paper studies. Three of its
//! properties drive the paper's findings and are modelled here:
//!
//! 1. **256-byte access granularity.** Every media transaction moves one
//!    XPLine, regardless of how few bytes the iMC asked for. The
//!    [`XpMedia`] counters tap traffic at this boundary; the ratio between
//!    them and the iMC counters is the paper's read/write amplification.
//! 2. **Limited internal concurrency.** A DIMM services only a handful of
//!    concurrent media reads (modelled as a [`simbase::ServerPool`]) and
//!    drains writes at a fixed, slow rate. This is why write bandwidth
//!    saturates at small thread counts (§2.2 of the paper).
//! 3. **Address indirection.** Optane remaps XPLines through an address
//!    indirection table (AIT) for wear levelling; the on-DIMM AIT cache
//!    covers roughly 16 MB, and overflowing it adds a large latency step —
//!    the 16 MB knee in Figure 8 (§3.6).
//!
//! The crate also provides [`SparseStore`], the byte-addressable functional
//! backing store used as the machine's persistent image (what survives a
//! simulated power failure).

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod ait;
pub mod media;
pub mod store;

pub use ait::AitCache;
pub use media::{MediaParams, XpMedia};
pub use store::SparseStore;
