//! Timing and counter model of one DIMM's 3D-XPoint media.

use simbase::{Addr, ByteCounter, Cycles, Server, ServerPool, XPLINE_BYTES};

use crate::ait::AitCache;

/// Timing parameters for the media of one DIMM.
///
/// Values are calibrated against the paper's reported latencies; see the
/// calibration table in `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct MediaParams {
    /// Latency of one XPLine read when the AIT entry is cached.
    pub read_latency: Cycles,
    /// Additional latency when the AIT cache misses.
    pub ait_miss_penalty: Cycles,
    /// Number of concurrent media reads the DIMM can service.
    pub read_banks: usize,
    /// Service time of one XPLine write at the media.
    pub write_service: Cycles,
    /// Address coverage of the on-DIMM AIT cache, in bytes.
    pub ait_coverage_bytes: u64,
    /// Associativity of the AIT cache.
    pub ait_ways: usize,
}

impl Default for MediaParams {
    fn default() -> Self {
        // G1-flavoured defaults; the machine configuration layer overrides
        // these per generation.
        MediaParams {
            read_latency: 420,
            ait_miss_penalty: 380,
            read_banks: 4,
            write_service: 900,
            ait_coverage_bytes: 16 << 20,
            ait_ways: 16,
        }
    }
}

/// The 3D-XPoint media of one DIMM: timing, occupancy, and byte counters.
///
/// The media is purely a timing/counter model; functional bytes live in the
/// machine-level persistent image ([`crate::SparseStore`]). All transfers
/// are whole XPLines — the granularity mismatch with 64 B cachelines is
/// applied by the on-DIMM controller above this layer.
#[derive(Debug, Clone)]
pub struct XpMedia {
    params: MediaParams,
    ait: AitCache,
    read_banks: ServerPool,
    write_port: Server,
    counters: ByteCounter,
}

impl XpMedia {
    /// Creates a media model with the given parameters.
    pub fn new(params: MediaParams) -> Self {
        let ait = AitCache::new(params.ait_coverage_bytes, params.ait_ways);
        let read_banks = ServerPool::new(params.read_banks);
        XpMedia {
            params,
            ait,
            read_banks,
            write_port: Server::new(),
            counters: ByteCounter::new(),
        }
    }

    /// Reads one XPLine from the media.
    ///
    /// `addr` may be any address within the XPLine. Returns the completion
    /// time of the read as observed by the requester.
    pub fn read_xpline(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.counters.add_read(XPLINE_BYTES);
        let mut service = self.params.read_latency;
        if !self.ait.access(addr.xpline()) {
            service += self.params.ait_miss_penalty;
        }
        self.read_banks.request(now, service)
    }

    /// Writes one XPLine to the media.
    ///
    /// Returns the completion time at the media. Callers decide whether the
    /// requester waits for it (the DDR-T protocol usually does not).
    pub fn write_xpline(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.counters.add_write(XPLINE_BYTES);
        let mut service = self.params.write_service;
        if !self.ait.access(addr.xpline()) {
            service += self.params.ait_miss_penalty;
        }
        self.write_port.request(now, service)
    }

    /// Returns the media-boundary byte counters (the `ipmwatch` media view).
    pub fn counters(&self) -> ByteCounter {
        self.counters
    }

    /// Returns AIT cache `(hits, misses)`.
    pub fn ait_stats(&self) -> (u64, u64) {
        self.ait.stats()
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &MediaParams {
        self.params_ref()
    }

    fn params_ref(&self) -> &MediaParams {
        &self.params
    }

    /// Resets counters and occupancy (AIT contents survive, like a real
    /// DIMM between benchmark runs; use [`XpMedia::reset_all`] for a cold
    /// restart).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Resets everything: counters, bank occupancy, and AIT contents.
    pub fn reset_all(&mut self) {
        self.counters.reset();
        self.read_banks.reset();
        self.write_port.reset();
        self.ait.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media() -> XpMedia {
        XpMedia::new(MediaParams {
            read_latency: 400,
            ait_miss_penalty: 300,
            read_banks: 2,
            write_service: 900,
            ait_coverage_bytes: 1 << 20,
            ait_ways: 16,
        })
    }

    #[test]
    fn read_counts_whole_xpline() {
        let mut m = media();
        m.read_xpline(0, Addr(64));
        assert_eq!(m.counters().read, 256);
        assert_eq!(m.counters().write, 0);
    }

    #[test]
    fn write_counts_whole_xpline() {
        let mut m = media();
        m.write_xpline(0, Addr(0));
        assert_eq!(m.counters().write, 256);
    }

    #[test]
    fn first_read_pays_ait_miss() {
        let mut m = media();
        let t1 = m.read_xpline(0, Addr(0));
        assert_eq!(t1, 700); // 400 + 300 AIT miss
                             // Different XPLine in the same AIT granule: hit.
        let t2 = m.read_xpline(1000, Addr(256));
        assert_eq!(t2, 1400);
    }

    #[test]
    fn read_concurrency_is_limited() {
        let mut m = media();
        // Warm the AIT granule so the three reads below are uniform.
        m.read_xpline(0, Addr(0));
        let a = m.read_xpline(10_000, Addr(0));
        let b = m.read_xpline(10_000, Addr(256));
        let c = m.read_xpline(10_000, Addr(512));
        assert_eq!(a, 10_400);
        assert_eq!(b, 10_400);
        // Third concurrent read queues behind one of the two banks.
        assert_eq!(c, 10_800);
    }

    #[test]
    fn writes_serialize_on_the_write_port() {
        let mut m = media();
        m.read_xpline(0, Addr(0)); // warm AIT
        let a = m.write_xpline(10_000, Addr(0));
        let b = m.write_xpline(10_000, Addr(64));
        assert_eq!(a, 10_900);
        assert_eq!(b, 11_800);
    }

    #[test]
    fn reset_counters_preserves_ait() {
        let mut m = media();
        m.read_xpline(0, Addr(0));
        m.reset_counters();
        assert_eq!(m.counters().read, 0);
        // AIT still warm.
        let t = m.read_xpline(100_000, Addr(0));
        assert_eq!(t, 100_400);
    }

    #[test]
    fn reset_all_cools_ait() {
        let mut m = media();
        m.read_xpline(0, Addr(0));
        m.reset_all();
        let t = m.read_xpline(0, Addr(0));
        assert_eq!(t, 700);
    }
}
