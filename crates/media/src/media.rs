//! Timing and counter model of one DIMM's 3D-XPoint media.

use std::collections::BTreeSet;

use simbase::{Addr, ByteCounter, Cycles, HitMiss, Server, ServerPool, XPLINE_BYTES};

use crate::ait::AitCache;

/// Timing parameters for the media of one DIMM.
///
/// Values are calibrated against the paper's reported latencies; see the
/// calibration table in `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct MediaParams {
    /// Latency of one XPLine read when the AIT entry is cached.
    pub read_latency: Cycles,
    /// Additional latency when the AIT cache misses.
    pub ait_miss_penalty: Cycles,
    /// Number of concurrent media reads the DIMM can service.
    pub read_banks: usize,
    /// Service time of one XPLine write at the media.
    pub write_service: Cycles,
    /// Address coverage of the on-DIMM AIT cache, in bytes.
    pub ait_coverage_bytes: u64,
    /// Associativity of the AIT cache.
    pub ait_ways: usize,
}

impl Default for MediaParams {
    fn default() -> Self {
        // G1-flavoured defaults; the machine configuration layer overrides
        // these per generation.
        MediaParams {
            read_latency: 420,
            ait_miss_penalty: 380,
            read_banks: 4,
            write_service: 900,
            ait_coverage_bytes: 16 << 20,
            ait_ways: 16,
        }
    }
}

/// The 3D-XPoint media of one DIMM: timing, occupancy, and byte counters.
///
/// The media is purely a timing/counter model; functional bytes live in the
/// machine-level persistent image ([`crate::SparseStore`]). All transfers
/// are whole XPLines — the granularity mismatch with 64 B cachelines is
/// applied by the on-DIMM controller above this layer.
#[derive(Debug, Clone)]
pub struct XpMedia {
    params: MediaParams,
    ait: AitCache,
    read_banks: ServerPool,
    write_port: Server,
    counters: ByteCounter,
    /// Cacheline addresses whose cells hold an uncorrectable error. The
    /// set is part of the media's *stored* state: it survives resets and
    /// power failures, and is cleared only by an overwrite of the line
    /// (write-in-place repair) or an address-range scrub.
    poisoned: BTreeSet<u64>,
    ue_reads: u64,
}

impl XpMedia {
    /// Creates a media model with the given parameters.
    pub fn new(params: MediaParams) -> Self {
        let ait = AitCache::new(params.ait_coverage_bytes, params.ait_ways);
        let read_banks = ServerPool::new(params.read_banks);
        XpMedia {
            params,
            ait,
            read_banks,
            write_port: Server::new(),
            counters: ByteCounter::new(),
            poisoned: BTreeSet::new(),
            ue_reads: 0,
        }
    }

    /// Reads one XPLine from the media.
    ///
    /// `addr` may be any address within the XPLine. Returns the completion
    /// time of the read as observed by the requester.
    pub fn read_xpline(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.counters.add_read(XPLINE_BYTES);
        let xp = addr.xpline();
        if self
            .poisoned
            .range(xp.0..xp.0 + XPLINE_BYTES)
            .next()
            .is_some()
        {
            self.ue_reads += 1;
        }
        let mut service = self.params.read_latency;
        if !self.ait.access(xp) {
            service += self.params.ait_miss_penalty;
        }
        self.read_banks.request(now, service)
    }

    /// Writes one XPLine to the media.
    ///
    /// Returns the completion time at the media. Callers decide whether the
    /// requester waits for it (the DDR-T protocol usually does not).
    pub fn write_xpline(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.counters.add_write(XPLINE_BYTES);
        let mut service = self.params.write_service;
        if !self.ait.access(addr.xpline()) {
            service += self.params.ait_miss_penalty;
        }
        self.write_port.request(now, service)
    }

    // ----- uncorrectable errors (UE/poison) ---------------------------

    /// Marks the cacheline containing `addr` as holding an uncorrectable
    /// error: its cells lost their contents (e.g. power failed mid
    /// media-write) and reads of the line must be surfaced as poisoned
    /// instead of silently returning data.
    pub fn inject_poison(&mut self, addr: Addr) {
        self.poisoned.insert(addr.cacheline().0);
    }

    /// Clears poison on the cacheline containing `addr` (write-in-place
    /// repair: an overwrite re-programs the cells). Returns `true` if the
    /// line was poisoned.
    pub fn clear_poison(&mut self, addr: Addr) -> bool {
        self.poisoned.remove(&addr.cacheline().0)
    }

    /// Returns `true` if the cacheline containing `addr` is poisoned.
    pub fn is_poisoned(&self, addr: Addr) -> bool {
        self.poisoned.contains(&addr.cacheline().0)
    }

    /// Returns all poisoned cacheline addresses, sorted.
    pub fn poisoned_lines(&self) -> Vec<u64> {
        self.poisoned.iter().copied().collect()
    }

    /// Address-range scrub over `[start, start + len)`: clears and returns
    /// the poisoned lines found in the range. The data in those lines is
    /// gone — the scrub repairs the *addresses*, not the contents.
    pub fn scrub_range(&mut self, start: Addr, len: u64) -> Vec<u64> {
        let lo = start.cacheline().0;
        let hi = start.0 + len;
        let repaired: Vec<u64> = self.poisoned.range(lo..hi).copied().collect();
        for cl in &repaired {
            self.poisoned.remove(cl);
        }
        repaired
    }

    /// Returns how many XPLine reads touched a poisoned line (UE
    /// detections at the media).
    pub fn ue_reads(&self) -> u64 {
        self.ue_reads
    }

    /// Returns the media-boundary byte counters (the `ipmwatch` media view).
    pub fn counters(&self) -> ByteCounter {
        self.counters
    }

    /// Returns the AIT cache's hit/miss counters.
    pub fn ait_counters(&self) -> HitMiss {
        self.ait.counters()
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &MediaParams {
        self.params_ref()
    }

    fn params_ref(&self) -> &MediaParams {
        &self.params
    }

    /// Resets counters and occupancy (AIT contents survive, like a real
    /// DIMM between benchmark runs; use [`XpMedia::reset_all`] for a cold
    /// restart).
    pub fn reset_counters(&mut self) {
        self.counters.reset();
        self.ait.reset_stats();
    }

    /// Resets everything: counters, bank occupancy, and AIT contents.
    /// Poisoned lines are *kept* — an uncorrectable error lives in the
    /// cells and survives any reset short of a repair write or scrub.
    pub fn reset_all(&mut self) {
        self.counters.reset();
        self.read_banks.reset();
        self.write_port.reset();
        self.ait.reset();
        self.ue_reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn media() -> XpMedia {
        XpMedia::new(MediaParams {
            read_latency: 400,
            ait_miss_penalty: 300,
            read_banks: 2,
            write_service: 900,
            ait_coverage_bytes: 1 << 20,
            ait_ways: 16,
        })
    }

    #[test]
    fn read_counts_whole_xpline() {
        let mut m = media();
        m.read_xpline(0, Addr(64));
        assert_eq!(m.counters().read, 256);
        assert_eq!(m.counters().write, 0);
    }

    #[test]
    fn write_counts_whole_xpline() {
        let mut m = media();
        m.write_xpline(0, Addr(0));
        assert_eq!(m.counters().write, 256);
    }

    #[test]
    fn first_read_pays_ait_miss() {
        let mut m = media();
        let t1 = m.read_xpline(0, Addr(0));
        assert_eq!(t1, 700); // 400 + 300 AIT miss
                             // Different XPLine in the same AIT granule: hit.
        let t2 = m.read_xpline(1000, Addr(256));
        assert_eq!(t2, 1400);
    }

    #[test]
    fn read_concurrency_is_limited() {
        let mut m = media();
        // Warm the AIT granule so the three reads below are uniform.
        m.read_xpline(0, Addr(0));
        let a = m.read_xpline(10_000, Addr(0));
        let b = m.read_xpline(10_000, Addr(256));
        let c = m.read_xpline(10_000, Addr(512));
        assert_eq!(a, 10_400);
        assert_eq!(b, 10_400);
        // Third concurrent read queues behind one of the two banks.
        assert_eq!(c, 10_800);
    }

    #[test]
    fn writes_serialize_on_the_write_port() {
        let mut m = media();
        m.read_xpline(0, Addr(0)); // warm AIT
        let a = m.write_xpline(10_000, Addr(0));
        let b = m.write_xpline(10_000, Addr(64));
        assert_eq!(a, 10_900);
        assert_eq!(b, 11_800);
    }

    #[test]
    fn reset_counters_preserves_ait() {
        let mut m = media();
        m.read_xpline(0, Addr(0));
        m.reset_counters();
        assert_eq!(m.counters().read, 0);
        // AIT still warm.
        let t = m.read_xpline(100_000, Addr(0));
        assert_eq!(t, 100_400);
    }

    #[test]
    fn poison_is_cacheline_granular() {
        let mut m = media();
        m.inject_poison(Addr(64 + 3)); // anywhere within the line
        assert!(m.is_poisoned(Addr(64)));
        assert!(m.is_poisoned(Addr(127)));
        assert!(!m.is_poisoned(Addr(0)));
        assert!(!m.is_poisoned(Addr(128)));
        assert_eq!(m.poisoned_lines(), vec![64]);
    }

    #[test]
    fn reading_a_poisoned_xpline_counts_a_ue() {
        let mut m = media();
        m.inject_poison(Addr(128));
        m.read_xpline(0, Addr(0)); // same XPLine as the poisoned line
        assert_eq!(m.ue_reads(), 1);
        m.read_xpline(1000, Addr(256)); // clean XPLine
        assert_eq!(m.ue_reads(), 1);
    }

    #[test]
    fn overwrite_repairs_poison() {
        let mut m = media();
        m.inject_poison(Addr(0));
        assert!(m.clear_poison(Addr(0)));
        assert!(!m.is_poisoned(Addr(0)));
        assert!(!m.clear_poison(Addr(0)), "already clean");
    }

    #[test]
    fn scrub_clears_only_the_range() {
        let mut m = media();
        m.inject_poison(Addr(0));
        m.inject_poison(Addr(256));
        m.inject_poison(Addr(1024));
        let repaired = m.scrub_range(Addr(0), 512);
        assert_eq!(repaired, vec![0, 256]);
        assert!(!m.is_poisoned(Addr(0)));
        assert!(m.is_poisoned(Addr(1024)), "outside the scrubbed range");
    }

    #[test]
    fn poison_survives_reset_all() {
        let mut m = media();
        m.inject_poison(Addr(0));
        m.reset_all();
        assert!(m.is_poisoned(Addr(0)), "UEs live in the cells");
    }

    #[test]
    fn reset_all_cools_ait() {
        let mut m = media();
        m.read_xpline(0, Addr(0));
        m.reset_all();
        let t = m.read_xpline(0, Addr(0));
        assert_eq!(t, 700);
    }
}
