//! Sparse byte-addressable backing store.
//!
//! Experiments sweep working sets from 4 KB to 1 GB inside a much larger
//! simulated physical address space, so the functional image is stored
//! sparsely: a hash map from 4 KB-aligned page numbers to owned page
//! buffers. Unwritten memory reads as zero, matching freshly-allocated DAX
//! pages.

use std::collections::BTreeMap;

use simbase::Addr;

/// Size of one allocation unit in the sparse store.
const PAGE_BYTES: u64 = 4096;

/// A sparse, byte-addressable memory image.
///
/// Used both as the persistent media image (the bytes that survive a crash)
/// and as the volatile DRAM image in the machine model.
///
/// Page buffers live in an arena (`slabs`) addressed through an ordered
/// index, with a one-slot hint remembering the last page touched. Streaming
/// access patterns (64 consecutive cacheline writes per page) resolve
/// through the hint without walking the index; the hint never affects
/// results, only how fast the page is found.
#[derive(Debug, Default, Clone)]
pub struct SparseStore {
    /// Page number → arena slot. Ordered so that iteration (snapshot
    /// encodings, diffs) is identical across processes — the determinism
    /// contract (DESIGN.md) bans unordered maps in serialization paths.
    index: BTreeMap<u64, usize>,
    /// Page buffers, in first-touch order. Never iterated directly:
    /// everything order-sensitive goes through `index`.
    slabs: Vec<Box<[u8; PAGE_BYTES as usize]>>,
    /// `(page_number, slot)` of the most recently touched page.
    hint: Option<(u64, usize)>,
}

impl SparseStore {
    /// Creates an empty (all-zero) store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the arena slot of `page` without allocating, consulting the
    /// hint first.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<usize> {
        if let Some((p, s)) = self.hint {
            if p == page {
                return Some(s);
            }
        }
        self.index.get(&page).copied()
    }

    /// Returns the arena slot of `page`, allocating a zeroed page if
    /// absent, and remembers it in the hint.
    #[inline]
    fn slot_of_mut(&mut self, page: u64) -> usize {
        if let Some((p, s)) = self.hint {
            if p == page {
                return s;
            }
        }
        let slot = match self.index.get(&page) {
            Some(&s) => s,
            None => {
                self.slabs.push(Box::new([0u8; PAGE_BYTES as usize]));
                let s = self.slabs.len() - 1;
                self.index.insert(page, s);
                s
            }
        };
        self.hint = Some((page, slot));
        slot
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: Addr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut remaining: &mut [u8] = buf;
        while !remaining.is_empty() {
            let page = pos / PAGE_BYTES;
            let offset = (pos % PAGE_BYTES) as usize;
            let chunk = remaining.len().min(PAGE_BYTES as usize - offset);
            let (head, tail) = remaining.split_at_mut(chunk);
            match self.slot_of(page) {
                Some(s) => head.copy_from_slice(&self.slabs[s][offset..offset + chunk]),
                None => head.fill(0),
            }
            remaining = tail;
            pos += chunk as u64;
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: Addr, buf: &[u8]) {
        let mut pos = addr.0;
        let mut remaining = buf;
        while !remaining.is_empty() {
            let page = pos / PAGE_BYTES;
            let offset = (pos % PAGE_BYTES) as usize;
            let chunk = remaining.len().min(PAGE_BYTES as usize - offset);
            let slot = self.slot_of_mut(page);
            self.slabs[slot][offset..offset + chunk].copy_from_slice(&remaining[..chunk]);
            remaining = &remaining[chunk..];
            pos += chunk as u64;
        }
    }

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Returns the number of resident (allocated) pages.
    pub fn resident_pages(&self) -> usize {
        self.index.len()
    }

    /// Size in bytes of one allocation unit, for page-level snapshots.
    pub const PAGE_BYTES: u64 = PAGE_BYTES;

    /// Returns `(page_number, contents)` for every resident page, sorted
    /// by page number so snapshot encodings are deterministic (BTreeMap
    /// iteration is already page-number-ordered).
    pub fn sorted_pages(&self) -> Vec<(u64, &[u8])> {
        self.index
            .iter()
            .map(|(&n, &s)| (n, self.slabs[s].as_slice()))
            .collect()
    }

    /// Installs a full page at `page_number` (inverse of
    /// [`SparseStore::sorted_pages`]).
    ///
    /// # Panics
    ///
    /// Panics if `contents` is not exactly one page long.
    pub fn install_page(&mut self, page_number: u64, contents: &[u8]) {
        assert_eq!(
            contents.len() as u64,
            PAGE_BYTES,
            "a page is exactly {PAGE_BYTES} bytes"
        );
        let slot = self.slot_of_mut(page_number);
        self.slabs[slot].copy_from_slice(contents);
    }

    /// Drops all contents, returning the store to all-zero.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slabs.clear();
        self.hint = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let s = SparseStore::new();
        let mut buf = [0xAAu8; 16];
        s.read(Addr(12345), &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut s = SparseStore::new();
        let data: Vec<u8> = (0..=255).collect();
        s.write(Addr(100), &data);
        let mut buf = vec![0u8; 256];
        s.read(Addr(100), &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn writes_crossing_page_boundaries() {
        let mut s = SparseStore::new();
        let data = [0x5Au8; 64];
        // Straddles the boundary between page 0 and page 1.
        s.write(Addr(PAGE_BYTES - 32), &data);
        let mut buf = [0u8; 64];
        s.read(Addr(PAGE_BYTES - 32), &mut buf);
        assert_eq!(buf, data);
        assert_eq!(s.resident_pages(), 2);
    }

    #[test]
    fn u64_round_trip() {
        let mut s = SparseStore::new();
        s.write_u64(Addr(8), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.read_u64(Addr(8)), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(s.read_u64(Addr(0)), 0);
    }

    #[test]
    fn u64_crossing_page_boundary() {
        let mut s = SparseStore::new();
        s.write_u64(Addr(PAGE_BYTES - 4), 0x0123_4567_89AB_CDEF);
        assert_eq!(s.read_u64(Addr(PAGE_BYTES - 4)), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn overlapping_writes_take_latest() {
        let mut s = SparseStore::new();
        s.write(Addr(0), &[1u8; 8]);
        s.write(Addr(4), &[2u8; 8]);
        let mut buf = [0u8; 12];
        s.read(Addr(0), &mut buf);
        assert_eq!(&buf[..4], &[1, 1, 1, 1]);
        assert_eq!(&buf[4..], &[2u8; 8]);
    }

    #[test]
    fn clear_resets_contents() {
        let mut s = SparseStore::new();
        s.write_u64(Addr(0), 7);
        s.clear();
        assert_eq!(s.read_u64(Addr(0)), 0);
        assert_eq!(s.resident_pages(), 0);
    }

    #[test]
    fn page_snapshot_round_trips_and_is_sorted() {
        let mut s = SparseStore::new();
        s.write_u64(Addr(3 * PAGE_BYTES), 3);
        s.write_u64(Addr(0), 1);
        s.write_u64(Addr(7 * PAGE_BYTES + 100), 7);
        let pages = s.sorted_pages();
        let ids: Vec<u64> = pages.iter().map(|&(n, _)| n).collect();
        assert_eq!(ids, vec![0, 3, 7]);
        let mut restored = SparseStore::new();
        for (n, contents) in pages {
            restored.install_page(n, contents);
        }
        assert_eq!(restored.read_u64(Addr(0)), 1);
        assert_eq!(restored.read_u64(Addr(3 * PAGE_BYTES)), 3);
        assert_eq!(restored.read_u64(Addr(7 * PAGE_BYTES + 100)), 7);
        assert_eq!(restored.resident_pages(), 3);
    }

    #[test]
    fn sparse_distant_addresses() {
        let mut s = SparseStore::new();
        s.write_u64(Addr(0), 1);
        s.write_u64(Addr(1 << 40), 2);
        assert_eq!(s.read_u64(Addr(0)), 1);
        assert_eq!(s.read_u64(Addr(1 << 40)), 2);
        assert_eq!(s.resident_pages(), 2);
    }
}
