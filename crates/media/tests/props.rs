//! Property tests for the media model: counter accounting, AIT
//! consistency, and the sparse store as a byte-array model.

use proptest::prelude::*;
use simbase::{Addr, XPLINE_BYTES};
use xpmedia::{AitCache, MediaParams, SparseStore, XpMedia};

proptest! {
    #[test]
    fn media_counters_account_every_transaction(
        ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..200),
    ) {
        let mut m = XpMedia::new(MediaParams::default());
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut now = 0;
        for (xp, is_write) in ops {
            let addr = Addr(xp * XPLINE_BYTES);
            if is_write {
                now = m.write_xpline(now, addr);
                writes += 1;
            } else {
                now = m.read_xpline(now, addr);
                reads += 1;
            }
        }
        prop_assert_eq!(m.counters().read, reads * XPLINE_BYTES);
        prop_assert_eq!(m.counters().write, writes * XPLINE_BYTES);
        let ait = m.ait_counters();
        prop_assert_eq!(ait.total(), reads + writes, "every transaction consults the AIT");
    }

    #[test]
    fn media_completions_never_precede_service(
        xps in prop::collection::vec(0u64..64, 1..100),
    ) {
        let params = MediaParams::default();
        let min_service = params.read_latency;
        let mut m = XpMedia::new(params);
        for (i, xp) in xps.iter().enumerate() {
            let now = (i as u64) * 10;
            let done = m.read_xpline(now, Addr(xp * XPLINE_BYTES));
            prop_assert!(done >= now + min_service);
        }
    }

    #[test]
    fn ait_within_coverage_converges_to_hits(
        granules in prop::collection::vec(0u64..32, 10..200),
    ) {
        // 32 granules x 4 KB = 128 KB, well within 1 MB coverage: after
        // one touch, a granule never misses again.
        let mut ait = AitCache::new(1 << 20, 16);
        let mut touched = std::collections::HashSet::new();
        for g in granules {
            let hit = ait.access(Addr(g * 4096));
            prop_assert_eq!(hit, touched.contains(&g), "granule {}", g);
            touched.insert(g);
        }
    }

    #[test]
    fn sparse_store_matches_vec_model(
        writes in prop::collection::vec((0usize..2000, prop::collection::vec(any::<u8>(), 1..64)), 1..60),
    ) {
        let mut store = SparseStore::new();
        let mut model = vec![0u8; 4096];
        for (off, data) in writes {
            let off = off.min(4096 - data.len());
            store.write(Addr(off as u64), &data);
            model[off..off + data.len()].copy_from_slice(&data);
        }
        let mut got = vec![0u8; 4096];
        store.read(Addr(0), &mut got);
        prop_assert_eq!(got, model);
    }
}
