//! The DRAM (DDR4) channel: the paper's synchronous comparison substrate.

use std::collections::BTreeMap;

use simbase::{Addr, ByteCounter, Cycles, ServerPool, CACHELINE_BYTES};

/// DRAM channel configuration.
#[derive(Debug, Clone)]
pub struct DramParams {
    /// Cacheline load latency from an idle channel.
    pub load_latency: Cycles,
    /// Latency of accepting a store or write-back.
    pub store_latency: Cycles,
    /// Cycles from a flush acceptance until the line is readable again.
    /// Much shorter than on PM, but non-zero: Figure 7 (b)/(d) shows a ~2x
    /// read-after-persist gap on DRAM.
    pub persist_pipeline: Cycles,
    /// Number of parallel channel slots (bandwidth model).
    pub channels: usize,
    /// Channel occupancy per 64 B transfer.
    pub transfer_occupancy: Cycles,
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams {
            load_latency: 230,
            store_latency: 60,
            persist_pipeline: 380,
            channels: 4,
            transfer_occupancy: 12,
        }
    }
}

/// How many in-flight persist records to tolerate before garbage
/// collecting completed ones.
const INFLIGHT_GC_THRESHOLD: usize = 1 << 20;

/// One socket's DRAM controller.
#[derive(Debug)]
pub struct DramController {
    params: DramParams,
    channels: ServerPool,
    counters: ByteCounter,
    /// Cacheline address -> time the last flushed write becomes readable.
    inflight: BTreeMap<u64, Cycles>,
}

impl DramController {
    /// Creates a DRAM controller.
    pub fn new(params: DramParams) -> Self {
        let channels = ServerPool::new(params.channels.max(1));
        DramController {
            params,
            channels,
            counters: ByteCounter::new(),
            inflight: BTreeMap::new(),
        }
    }

    /// Loads the cacheline at `addr`, returning the completion time.
    pub fn read(&mut self, now: Cycles, addr: Addr) -> Cycles {
        self.counters.add_read(CACHELINE_BYTES);
        let cl = addr.cacheline().0;
        let start = match self.inflight.get(&cl) {
            Some(&readable) if readable > now => readable,
            _ => now,
        };
        let queued = self.channels.request(start, self.params.transfer_occupancy);
        queued + self.params.load_latency
    }

    /// Accepts a store or write-back of the cacheline at `addr`, returning
    /// `(accept_time, readable_at)`.
    pub fn write(&mut self, now: Cycles, addr: Addr) -> (Cycles, Cycles) {
        self.counters.add_write(CACHELINE_BYTES);
        let queued = self.channels.request(now, self.params.transfer_occupancy);
        let accept = queued + self.params.store_latency;
        let readable_at = accept + self.params.persist_pipeline;
        let cl = addr.cacheline().0;
        let entry = self.inflight.entry(cl).or_insert(0);
        *entry = (*entry).max(readable_at);
        if self.inflight.len() >= INFLIGHT_GC_THRESHOLD {
            self.inflight.retain(|_, &mut readable| readable > now);
        }
        (accept, readable_at)
    }

    /// Returns the channel byte counters.
    pub fn counters(&self) -> ByteCounter {
        self.counters
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &DramParams {
        &self.params
    }

    /// Resets counters and occupancy.
    pub fn reset_all(&mut self) {
        self.counters.reset();
        self.channels.reset();
        self.inflight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_read_takes_load_latency() {
        let mut d = DramController::new(DramParams::default());
        let done = d.read(1000, Addr(0));
        assert_eq!(done, 1000 + 12 + 230);
    }

    #[test]
    fn read_after_flush_pays_short_stall() {
        let mut d = DramController::new(DramParams::default());
        let (accept, readable) = d.write(0, Addr(0));
        let done = d.read(accept, Addr(0));
        assert!(done >= readable);
        // Persist window is far shorter than the PM one.
        assert!(readable - accept < 500);
    }

    #[test]
    fn channel_contention_queues() {
        let mut d = DramController::new(DramParams {
            channels: 1,
            ..DramParams::default()
        });
        let a = d.read(0, Addr(0));
        let b = d.read(0, Addr(64));
        assert_eq!(b - a, 12, "second read queues one occupancy slot");
    }

    #[test]
    fn counters_track_traffic() {
        let mut d = DramController::new(DramParams::default());
        d.read(0, Addr(0));
        d.write(0, Addr(64));
        assert_eq!(d.counters().read, 64);
        assert_eq!(d.counters().write, 64);
        d.reset_all();
        assert_eq!(d.counters().read, 0);
    }
}
