//! Integrated memory controller (iMC) models.
//!
//! The iMC is where the paper's two protocols part ways:
//!
//! - **DDR-T (Optane)** is *asynchronous for writes*: a store, cacheline
//!   write-back, or non-temporal store completes — from the CPU's point of
//!   view — when it is accepted into the per-DIMM write pending queue
//!   (WPQ), which sits inside the ADR power-fail-protected domain. Reaching
//!   the on-DIMM buffers and the media happens later. Fences therefore
//!   guarantee *acceptance* (persistence), not *completion*, and a read
//!   issued right after a persist to the same line must wait out the
//!   in-flight write — the read-after-persist effect of Figure 7.
//! - **DDR4 (DRAM)** is synchronous and has none of the granularity
//!   mismatch, serving as the paper's comparison substrate.
//!
//! [`PmController`] owns the simulated Optane DIMMs, interleaves addresses
//! across them (4 KB granularity, as the evaluated AppDirect namespaces
//! do), taps traffic at the iMC boundary (the second `ipmwatch`
//! observation point), and models WPQ acceptance, drain, and the persist
//! pipeline. [`DramController`] models the DRAM channel.

#![forbid(unsafe_code)]
// The determinism/robustness contract (DESIGN.md) double-enforces the
// simlint no-unwrap rule with stock tooling in the sim crates; tests are
// exempt via clippy.toml (allow-unwrap-in-tests).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod dram;
pub mod pm;

pub use dram::{DramController, DramParams};
pub use pm::{ImcQueueStats, PersistWait, PmController, PmParams, PmWriteTicket};
