//! The persistent-memory side of the iMC: WPQ, interleaving, counters.

use std::collections::BTreeMap;

use simbase::{Addr, BandwidthGate, ByteCounter, Cycles, QueueStats, CACHELINE_BYTES};
use xpdimm::{DimmController, DimmParams, DimmStats, ReadSource};

/// Configuration of the PM channel: DIMM population, interleaving, WPQ.
#[derive(Debug, Clone)]
pub struct PmParams {
    /// Number of Optane DIMMs behind this controller.
    pub num_dimms: usize,
    /// Interleave granularity across DIMMs, in bytes (4096 in the paper's
    /// interleaved namespaces). Ignored with one DIMM.
    pub interleave_bytes: u64,
    /// Cycles between consecutive 64 B WPQ drains per DIMM (sets sustained
    /// per-DIMM write bandwidth).
    pub wpq_drain_interval: Cycles,
    /// WPQ depth per DIMM; acceptance stalls when full.
    pub wpq_capacity: usize,
    /// Cycles from WPQ acceptance until the written line is readable again
    /// (the read-after-persist window of Figure 7).
    pub persist_pipeline: Cycles,
    /// Cycles from WPQ acceptance until the write is visible in on-DIMM
    /// buffering — the shorter stall a merely `sfence`-ordered read pays.
    pub drain_visible: Cycles,
    /// Fixed iMC hop added to reads.
    pub read_queue_latency: Cycles,
    /// Latency of accepting one write into a non-full WPQ.
    pub write_accept_latency: Cycles,
    /// Per-DIMM configuration.
    pub dimm: DimmParams,
}

impl Default for PmParams {
    fn default() -> Self {
        PmParams {
            num_dimms: 1,
            interleave_bytes: 4096,
            wpq_drain_interval: 75,
            wpq_capacity: 64,
            persist_pipeline: 2300,
            drain_visible: 600,
            read_queue_latency: 30,
            write_accept_latency: 230,
            dimm: DimmParams::default(),
        }
    }
}

/// How strongly a PM read is ordered behind an in-flight persist to the
/// same cacheline.
///
/// The distinction reproduces the `mfence` vs `sfence` curves of Figure 7:
/// a read ordered by `mfence` observes the full persist pipeline, while a
/// read that is only `sfence`-separated from the flush stalls just until
/// the write drains from the WPQ into the on-DIMM buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistWait {
    /// Wait until the persisted line is fully readable (`readable_at`).
    Full,
    /// Wait only until the write has drained into on-DIMM buffering.
    Drain,
}

/// Timestamps of one accepted PM write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmWriteTicket {
    /// When the write entered the WPQ. Fences wait for this; the data is
    /// persistent (ADR) from this point.
    pub accept: Cycles,
    /// When the write is visible in the on-DIMM buffers (what a read that
    /// is only `sfence`-separated from the flush waits for).
    pub drained: Cycles,
    /// When a subsequent read of the same cacheline stops stalling.
    pub readable_at: Cycles,
}

/// How many in-flight persist records to tolerate before garbage
/// collecting completed ones.
const INFLIGHT_GC_THRESHOLD: usize = 1 << 20;

/// Occupancy of one DIMM's iMC queues (the `ipmwatch` RPQ/WPQ view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImcQueueStats {
    /// Read pending queue. The model's RPQ is unbounded, so
    /// `stall_cycles` is always zero; `max_depth` still exposes read
    /// backlog pressure.
    pub rpq: QueueStats,
    /// Write pending queue (the ADR-protected WPQ). `stall_cycles` is the
    /// time writes waited for a free slot — the Figure 5 back-pressure.
    pub wpq: QueueStats,
}

impl ImcQueueStats {
    /// Folds another window of observations into this one.
    pub fn merge(&mut self, other: &ImcQueueStats) {
        self.rpq.merge(&other.rpq);
        self.wpq.merge(&other.wpq);
    }
}

/// Occupancy observer for the (unbounded) read pending queue.
///
/// The read path itself is a fixed-latency hop plus the DIMM's timing
/// model, so this tracker changes no behaviour: it only records how many
/// reads were in flight at each acceptance.
#[derive(Debug, Clone, Default)]
struct RpqTracker {
    /// Completion times of reads still in flight.
    in_flight: Vec<Cycles>,
    stats: QueueStats,
}

impl RpqTracker {
    /// Records a read entering at `now` and completing at `done`.
    fn observe(&mut self, now: Cycles, done: Cycles) {
        self.in_flight.retain(|&c| c > now);
        self.in_flight.push(done);
        self.stats.accepts += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.in_flight.len() as u64);
    }

    fn clear_queue(&mut self) {
        self.in_flight.clear();
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

/// The Optane channel of one socket's iMC.
#[derive(Debug)]
pub struct PmController {
    params: PmParams,
    dimms: Vec<DimmController>,
    wpq: Vec<BandwidthGate>,
    rpq: Vec<RpqTracker>,
    imc: Vec<ByteCounter>,
    /// Cacheline address -> `(drained, readable_at)` of the last accepted
    /// write.
    inflight: BTreeMap<u64, (Cycles, Cycles)>,
    /// Size at which the next [`PmController::gc_inflight`] call actually
    /// walks the map (amortized: doubles with the surviving population).
    gc_watermark: usize,
}

/// Smallest `inflight` population worth garbage-collecting.
const INFLIGHT_GC_MIN: usize = 1 << 10;

impl PmController {
    /// Creates a controller with `params.num_dimms` DIMMs.
    ///
    /// # Panics
    ///
    /// Panics if the DIMM count is zero.
    pub fn new(params: PmParams) -> Self {
        assert!(params.num_dimms > 0, "need at least one DIMM");
        let dimms = (0..params.num_dimms)
            .map(|i| {
                let mut d = params.dimm.clone();
                d.seed ^= (i as u64) << 32;
                DimmController::new(d)
            })
            .collect();
        let wpq = (0..params.num_dimms)
            .map(|_| BandwidthGate::new(params.wpq_drain_interval, params.wpq_capacity))
            .collect();
        let rpq = vec![RpqTracker::default(); params.num_dimms];
        let imc = vec![ByteCounter::new(); params.num_dimms];
        PmController {
            params,
            dimms,
            wpq,
            rpq,
            imc,
            inflight: BTreeMap::new(),
            gc_watermark: INFLIGHT_GC_MIN,
        }
    }

    /// Maps an address to its DIMM index under the interleaving scheme.
    pub fn dimm_of(&self, addr: Addr) -> usize {
        if self.params.num_dimms == 1 {
            0
        } else {
            ((addr.0 / self.params.interleave_bytes) % self.params.num_dimms as u64) as usize
        }
    }

    /// Reads the cacheline at `addr`.
    ///
    /// Returns the completion time and where the DIMM served it from. The
    /// read stalls behind any in-flight persist to the same cacheline
    /// (DDR-T orders a read after a pending write to the same address);
    /// `wait` selects how far into the persist pipeline the read must wait.
    pub fn read(&mut self, now: Cycles, addr: Addr, wait: PersistWait) -> (Cycles, ReadSource) {
        let d = self.dimm_of(addr);
        self.imc[d].add_read(CACHELINE_BYTES);
        let cl = addr.cacheline().0;
        let start = match self.inflight.get(&cl) {
            Some(&(drained, readable)) => {
                let barrier = match wait {
                    PersistWait::Full => readable,
                    PersistWait::Drain => drained,
                };
                barrier.max(now)
            }
            None => now,
        };
        let result = self.dimms[d].read_cacheline(start + self.params.read_queue_latency, addr);
        self.rpq[d].observe(start, result.0);
        result
    }

    /// Accepts a 64 B write to `addr` (non-temporal store, cacheline
    /// write-back, or dirty eviction).
    pub fn write(&mut self, now: Cycles, addr: Addr) -> PmWriteTicket {
        let d = self.dimm_of(addr);
        self.imc[d].add_write(CACHELINE_BYTES);
        let (accept_raw, gate_drain) = self.wpq[d].accept(now);
        let accept = accept_raw + self.params.write_accept_latency;
        self.dimms[d].write_cacheline(gate_drain, addr);
        let drained = accept + self.params.drain_visible;
        let readable_at = accept + self.params.persist_pipeline;
        let cl = addr.cacheline().0;
        let entry = self.inflight.entry(cl).or_insert((0, 0));
        entry.0 = entry.0.max(drained);
        entry.1 = entry.1.max(readable_at);
        self.maybe_gc(now);
        PmWriteTicket {
            accept,
            drained,
            readable_at,
        }
    }

    fn maybe_gc(&mut self, now: Cycles) {
        if self.inflight.len() >= INFLIGHT_GC_THRESHOLD {
            self.inflight.retain(|_, &mut (_, readable)| readable > now);
        }
    }

    /// Drops in-flight write records that completed before `horizon`.
    ///
    /// The caller must guarantee that every timestamp it will ever pass to
    /// [`PmController::read`], [`PmController::write`], or the fault
    /// surveys from here on is `>= horizon` (the machine layer uses the
    /// minimum over all thread clocks, which only advance). Under that
    /// contract a record with both `drained` and `readable_at <= horizon`
    /// behaves exactly like an absent one — reads take `max(barrier, now)
    /// = now`, write merges take the fresh (larger) timestamps, and
    /// `undrained_lines` filters it out — so collecting it cannot change
    /// any result. Amortized: the walk only runs once the map outgrows a
    /// doubling watermark, so long write phases don't leave a large map
    /// taxing every subsequent read's lookup.
    pub fn gc_inflight(&mut self, horizon: Cycles) {
        if self.inflight.len() < self.gc_watermark {
            return;
        }
        self.inflight
            .retain(|_, &mut (drained, readable)| drained.max(readable) > horizon);
        self.gc_watermark = (self.inflight.len() * 2).max(INFLIGHT_GC_MIN);
    }

    // ----- fault-injection surveys and UE routing ---------------------

    /// Returns the cachelines accepted into a WPQ whose drain into the
    /// on-DIMM buffers has not completed by `now`, sorted by address. At a
    /// power failure these are the writes a WPQ partial-drain fault can
    /// interrupt mid-flight.
    pub fn undrained_lines(&self, now: Cycles) -> Vec<u64> {
        let mut lines: Vec<u64> = self
            .inflight
            .iter()
            .filter(|&(_, &(drained, _))| drained > now)
            .map(|(&cl, _)| cl)
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Returns the XPLines resident in the on-DIMM write-combining
    /// buffers across all DIMMs, sorted by address.
    pub fn buffered_xplines(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self
            .dimms
            .iter()
            .flat_map(|d| d.resident_write_xplines())
            .map(|a| a.0)
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Marks the cacheline containing `addr` as an uncorrectable error on
    /// its DIMM.
    pub fn poison_line(&mut self, addr: Addr) {
        let d = self.dimm_of(addr);
        self.dimms[d].poison_line(addr);
    }

    /// Returns `true` if the cacheline containing `addr` is poisoned.
    pub fn line_poisoned(&self, addr: Addr) -> bool {
        self.dimms[self.dimm_of(addr)].line_poisoned(addr)
    }

    /// Returns all poisoned cacheline addresses across DIMMs, sorted.
    pub fn poisoned_lines(&self) -> Vec<u64> {
        let mut lines: Vec<u64> = self
            .dimms
            .iter()
            .flat_map(DimmController::poisoned_lines)
            .collect();
        lines.sort_unstable();
        lines
    }

    /// Address-range scrub across all DIMMs: clears and returns the
    /// poisoned lines within `[start, start + len)`, sorted.
    pub fn scrub_range(&mut self, start: Addr, len: u64) -> Vec<u64> {
        let mut repaired: Vec<u64> = self
            .dimms
            .iter_mut()
            .flat_map(|d| d.scrub_range(start, len))
            .collect();
        repaired.sort_unstable();
        repaired
    }

    /// Returns the iMC-boundary counters summed over DIMMs (the `ipmwatch`
    /// "controller" view).
    pub fn imc_counters(&self) -> ByteCounter {
        let mut total = ByteCounter::new();
        for c in &self.imc {
            total.read += c.read;
            total.write += c.write;
        }
        total
    }

    /// Returns the media-boundary counters summed over DIMMs (the
    /// `ipmwatch` "media" view).
    pub fn media_counters(&self) -> ByteCounter {
        let mut total = ByteCounter::new();
        for d in &self.dimms {
            let c = d.media_counters();
            total.read += c.read;
            total.write += c.write;
        }
        total
    }

    /// Returns per-DIMM statistics.
    pub fn dimm_stats(&self) -> Vec<DimmStats> {
        self.dimms.iter().map(DimmController::stats).collect()
    }

    /// Returns per-DIMM RPQ/WPQ occupancy observations.
    pub fn queue_stats(&self) -> Vec<ImcQueueStats> {
        self.rpq
            .iter()
            .zip(&self.wpq)
            .map(|(r, w)| ImcQueueStats {
                rpq: r.stats,
                wpq: w.queue_stats(),
            })
            .collect()
    }

    /// Returns the number of DIMMs.
    pub fn num_dimms(&self) -> usize {
        self.dimms.len()
    }

    /// Returns the configured parameters.
    pub fn params(&self) -> &PmParams {
        &self.params
    }

    /// Power-failure handling: the WPQ and on-DIMM write buffers are inside
    /// the ADR domain, so their contents reach the media. Only timing state
    /// is cleared.
    pub fn power_fail_flush(&mut self, now: Cycles) {
        for d in &mut self.dimms {
            d.flush_all(now);
        }
        self.inflight.clear();
        for g in &mut self.wpq {
            g.clear_queue();
        }
        for r in &mut self.rpq {
            r.clear_queue();
        }
    }

    /// Resets traffic counters (between experiment phases), keeping buffer
    /// and AIT contents warm.
    pub fn reset_counters(&mut self) {
        for c in &mut self.imc {
            c.reset();
        }
        for d in &mut self.dimms {
            d.reset_counters();
        }
        for g in &mut self.wpq {
            g.reset_stats();
        }
        for r in &mut self.rpq {
            r.reset_stats();
        }
    }

    /// Cold-resets everything: counters, buffers, AIT, queues, in-flight
    /// persists.
    pub fn reset_all(&mut self) {
        for c in &mut self.imc {
            c.reset();
        }
        for d in &mut self.dimms {
            d.reset_all();
        }
        for g in &mut self.wpq {
            g.reset();
        }
        for r in &mut self.rpq {
            r.clear_queue();
            r.reset_stats();
        }
        self.inflight.clear();
        self.gc_watermark = INFLIGHT_GC_MIN;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::XPLINE_BYTES;

    fn pm(dimms: usize) -> PmController {
        PmController::new(PmParams {
            num_dimms: dimms,
            ..PmParams::default()
        })
    }

    #[test]
    fn interleaving_spreads_4k_blocks() {
        let c = pm(6);
        assert_eq!(c.dimm_of(Addr(0)), 0);
        assert_eq!(c.dimm_of(Addr(4095)), 0);
        assert_eq!(c.dimm_of(Addr(4096)), 1);
        assert_eq!(c.dimm_of(Addr(6 * 4096)), 0);
    }

    #[test]
    fn single_dimm_gets_everything() {
        let c = pm(1);
        assert_eq!(c.dimm_of(Addr(123_456_789)), 0);
    }

    #[test]
    fn imc_counts_cachelines_media_counts_xplines() {
        let mut c = pm(1);
        c.read(0, Addr(0), PersistWait::Full);
        assert_eq!(c.imc_counters().read, CACHELINE_BYTES);
        assert_eq!(c.media_counters().read, XPLINE_BYTES);
    }

    #[test]
    fn write_is_asynchronous() {
        let mut c = pm(1);
        let t = c.write(1000, Addr(0));
        // Acceptance is fast; buffer visibility and readability are later.
        assert_eq!(t.accept, 1000 + 230);
        assert_eq!(t.drained, t.accept + 600);
        assert_eq!(t.readable_at, t.accept + 2300);
    }

    #[test]
    fn read_after_persist_stalls() {
        let mut c = pm(1);
        let t = c.write(0, Addr(0));
        let (done, _) = c.read(t.accept, Addr(0), PersistWait::Full);
        assert!(
            done >= t.readable_at,
            "read right after the fence must wait out the persist"
        );
        // A read well after the persist window pays no stall.
        let (done2, _) = c.read(t.readable_at + 10_000, Addr(0), PersistWait::Full);
        assert!(done2 - (t.readable_at + 10_000) < 1000);
    }

    #[test]
    fn unrelated_reads_do_not_stall() {
        let mut c = pm(1);
        c.write(0, Addr(0));
        let (done, _) = c.read(100, Addr(1 << 20), PersistWait::Full);
        assert!(done < 2000, "different address: no persist stall");
    }

    #[test]
    fn wpq_backpressure_stalls_acceptance() {
        let mut c = PmController::new(PmParams {
            wpq_capacity: 2,
            wpq_drain_interval: 1000,
            ..PmParams::default()
        });
        let a = c.write(0, Addr(0));
        let b = c.write(0, Addr(256));
        let f = c.write(0, Addr(512)); // queue full: stalls
        assert_eq!(a.accept, 230);
        assert_eq!(b.accept, 230);
        assert!(f.accept > 1000, "third write waits for a drain slot");
    }

    #[test]
    fn writes_spread_across_dimms_avoid_backpressure() {
        let mk = |dimms: usize| {
            PmController::new(PmParams {
                num_dimms: dimms,
                wpq_capacity: 2,
                wpq_drain_interval: 1000,
                ..PmParams::default()
            })
        };
        let mut six = mk(6);
        let mut one = mk(1);
        // Six writes to different interleave units.
        let last_six = (0..6u64)
            .map(|i| six.write(0, Addr(i * 4096)).accept)
            .max()
            .unwrap();
        let last_one = (0..6u64)
            .map(|i| one.write(0, Addr(i * 64)).accept)
            .max()
            .unwrap();
        assert!(
            last_six < last_one,
            "interleaved DIMMs absorb bursts in parallel: {last_six} vs {last_one}"
        );
    }

    #[test]
    fn repeated_writes_extend_readability_window() {
        let mut c = pm(1);
        let t1 = c.write(0, Addr(0));
        let t2 = c.write(t1.accept, Addr(0));
        let (done, _) = c.read(t2.accept, Addr(0), PersistWait::Full);
        assert!(done >= t2.readable_at);
    }

    #[test]
    fn power_fail_flush_clears_queues() {
        let mut c = pm(1);
        for i in 0..10u64 {
            c.write(0, Addr(i * 64));
        }
        c.power_fail_flush(50_000);
        // After recovery, reads see no stale persist stalls.
        let (done, _) = c.read(50_000, Addr(0), PersistWait::Full);
        assert!(done < 52_500);
    }

    #[test]
    fn undrained_lines_tracks_inflight_writes() {
        let mut c = pm(1);
        let t = c.write(0, Addr(0));
        c.write(0, Addr(128));
        assert_eq!(c.undrained_lines(0), vec![0, 128]);
        // After the drain-visible window both writes have left the WPQ.
        assert!(c.undrained_lines(t.drained + 10_000).is_empty());
    }

    #[test]
    fn buffered_xplines_surveys_all_dimms() {
        let mut c = pm(2);
        c.write(0, Addr(0)); // DIMM 0
        c.write(0, Addr(4096)); // DIMM 1
        assert_eq!(c.buffered_xplines(), vec![0, 4096]);
    }

    #[test]
    fn poison_routes_through_interleaving() {
        let mut c = pm(2);
        c.poison_line(Addr(4096)); // lives on DIMM 1
        assert!(c.line_poisoned(Addr(4096)));
        assert!(!c.line_poisoned(Addr(0)));
        assert_eq!(c.poisoned_lines(), vec![4096]);
        let repaired = c.scrub_range(Addr(0), 1 << 20);
        assert_eq!(repaired, vec![4096]);
        assert!(!c.line_poisoned(Addr(4096)));
    }

    #[test]
    fn queue_stats_observe_wpq_backpressure_and_rpq_depth() {
        let mut c = PmController::new(PmParams {
            wpq_capacity: 2,
            wpq_drain_interval: 1000,
            ..PmParams::default()
        });
        c.write(0, Addr(0));
        c.write(0, Addr(256));
        c.write(0, Addr(512)); // queue full: stalls until t=1000
        let q = c.queue_stats();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].wpq.accepts, 3);
        assert_eq!(q[0].wpq.max_depth, 2);
        assert_eq!(q[0].wpq.stall_cycles, 1000);
        // Two overlapping reads at the same instant: RPQ depth reaches 2.
        c.read(0, Addr(1 << 20), PersistWait::Full);
        c.read(0, Addr(2 << 20), PersistWait::Full);
        let q = c.queue_stats();
        assert_eq!(q[0].rpq.accepts, 2);
        assert_eq!(q[0].rpq.max_depth, 2);
        assert_eq!(q[0].rpq.stall_cycles, 0, "the model's RPQ is unbounded");
        c.reset_counters();
        let q = c.queue_stats();
        assert_eq!(q[0], ImcQueueStats::default());
    }

    #[test]
    fn reset_counters_is_partial() {
        let mut c = pm(1);
        c.read(0, Addr(0), PersistWait::Full);
        c.reset_counters();
        assert_eq!(c.imc_counters().read, 0);
        assert_eq!(c.media_counters().read, 0);
        // Read buffer still warm: sibling read costs no media traffic.
        c.read(10_000, Addr(64), PersistWait::Full);
        assert_eq!(c.media_counters().read, 0);
        assert_eq!(c.imc_counters().read, CACHELINE_BYTES);
    }
}
