//! Property tests for the iMC models: interleaving stability, persist
//! pipeline ordering, and counter accounting.

use imc::{DramController, DramParams, PersistWait, PmController, PmParams};
use proptest::prelude::*;
use simbase::{Addr, CACHELINE_BYTES};

proptest! {
    #[test]
    fn interleaving_is_stable_and_block_aligned(
        addrs in prop::collection::vec(any::<u64>(), 1..100),
        dimms in 1usize..7,
    ) {
        let c = PmController::new(PmParams {
            num_dimms: dimms,
            ..PmParams::default()
        });
        for a in addrs {
            let d = c.dimm_of(Addr(a));
            prop_assert!(d < dimms);
            // Every address in the same 4 KB block maps to the same DIMM.
            let block_start = a & !4095;
            prop_assert_eq!(c.dimm_of(Addr(block_start)), d);
            prop_assert_eq!(c.dimm_of(Addr(block_start + 4095)), d);
        }
    }

    #[test]
    fn write_tickets_are_ordered(
        lines in prop::collection::vec(0u64..256, 1..100),
    ) {
        let mut c = PmController::new(PmParams::default());
        let mut now = 0;
        for cl in lines {
            let t = c.write(now, Addr(cl * CACHELINE_BYTES));
            prop_assert!(t.accept >= now, "no time travel");
            prop_assert!(t.drained > t.accept, "buffer visibility after acceptance");
            prop_assert!(t.readable_at > t.drained, "full persist after visibility");
            now = t.accept;
        }
    }

    #[test]
    fn reads_respect_the_persist_pipeline(
        cl in 0u64..64,
        gap in 0u64..5000,
    ) {
        let mut c = PmController::new(PmParams::default());
        let addr = Addr(cl * CACHELINE_BYTES);
        let t = c.write(0, addr);
        let (full, _) = c.read(t.accept + gap, addr, PersistWait::Full);
        prop_assert!(full >= t.readable_at, "Full waits out the pipeline");
        let mut c2 = PmController::new(PmParams::default());
        let t2 = c2.write(0, addr);
        let (drain, _) = c2.read(t2.accept + gap, addr, PersistWait::Drain);
        prop_assert!(drain >= t2.drained, "Drain waits for buffer visibility");
        prop_assert!(drain <= full, "Drain is never slower than Full");
    }

    #[test]
    fn imc_counters_track_requests(
        ops in prop::collection::vec((0u64..512, any::<bool>()), 1..150),
    ) {
        let mut c = PmController::new(PmParams::default());
        let mut reads = 0u64;
        let mut writes = 0u64;
        for (i, (cl, is_write)) in ops.iter().enumerate() {
            let addr = Addr(cl * CACHELINE_BYTES);
            if *is_write {
                c.write(i as u64 * 10, addr);
                writes += 1;
            } else {
                c.read(i as u64 * 10, addr, PersistWait::Full);
                reads += 1;
            }
        }
        prop_assert_eq!(c.imc_counters().read, reads * CACHELINE_BYTES);
        prop_assert_eq!(c.imc_counters().write, writes * CACHELINE_BYTES);
        // Media never reads fewer bytes than... media reads are 256 B per
        // miss, so media.read is a multiple of 256.
        prop_assert_eq!(c.media_counters().read % 256, 0);
    }

    #[test]
    fn dram_reads_after_writes_see_short_stalls(
        cl in 0u64..64,
    ) {
        let mut d = DramController::new(DramParams::default());
        let addr = Addr(cl * CACHELINE_BYTES);
        let (accept, readable) = d.write(0, addr);
        let done = d.read(accept, addr);
        prop_assert!(done >= readable);
        // The DRAM persist window is far below the PM one.
        prop_assert!(readable - accept < PmParams::default().persist_pipeline / 2);
    }
}
