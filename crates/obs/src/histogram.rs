//! Power-of-two bucketed histograms.

/// A histogram with power-of-two buckets.
///
/// Bucket `i` counts values `v` with `2^(i-1) < v <= 2^i` (bucket 0 counts
/// zeros and ones). Useful for distributions a single counter flattens —
/// queue depths, burst lengths — while staying cheap and deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(v: u64) -> usize {
        // 0 and 1 land in bucket 0; otherwise ceil(log2(v)).
        (64 - v.saturating_sub(1).leading_zeros()) as usize
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = Self::bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Returns the number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Returns the largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns `(upper_bound, count)` per occupied bucket, smallest first.
    /// Bucket with upper bound `b` counts values in `(b/2, b]` (the first
    /// bucket covers `0..=1`).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_power_of_two_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 5, 8, 9] {
            h.record(v);
        }
        // 0,1 -> bound 1; 2 -> bound 2; 3,4 -> bound 4; 5,8 -> bound 8;
        // 9 -> bound 16.
        assert_eq!(h.buckets(), vec![(1, 2), (2, 1), (4, 2), (8, 2), (16, 1)]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 9);
        assert_eq!(h.sum(), 32);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(100);
        h.reset();
        assert_eq!(h, Histogram::new());
    }
}
