//! simwatch: the sampled-metrics subsystem.
//!
//! The paper's method is built on `ipmwatch`/EMON counters *sampled over
//! time* (§2.4): read/write amplification, buffer hit ratios, and queue
//! pressure are time-series observations, not end-of-run totals. This crate
//! is the simulator's equivalent instrument:
//!
//! - [`Registry`]: a typed schema of named metrics (counters, gauges,
//!   ratios) that the machine layers register their observation points
//!   into; registration order is the deterministic column order of every
//!   emitted series;
//! - [`Sampler`]: a sim-clock-driven periodic sampler (`ipmwatch`'s 1 s
//!   ≙ a configurable number of simulated cycles) that records one row per
//!   crossed interval boundary and serialises the series as JSONL or CSV;
//! - [`Histogram`]: power-of-two bucketed value distribution, for metrics
//!   where a single counter loses the shape (e.g. queue depths).
//!
//! Everything here is deterministic: rows are stamped from the simulated
//! clock, values are formatted with a fixed encoding, and no wall-clock or
//! allocation-order state leaks into the output. Two runs with the same
//! seed produce byte-identical series — a property the test-suite and CI
//! enforce.

#![forbid(unsafe_code)]

pub mod histogram;
pub mod registry;
pub mod sampler;

pub use histogram::Histogram;
pub use registry::{MetricDef, MetricId, MetricKind, Registry, Value};
pub use sampler::Sampler;
