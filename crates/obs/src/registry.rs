//! The typed metrics registry: named observation points in a fixed order.

use std::fmt::Write as _;

/// What a metric's value means across samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing count (events, bytes).
    Counter,
    /// Point-in-time level that can move both ways (queue depth).
    Gauge,
    /// Derived quotient of two counters (hit ratio, amplification).
    Ratio,
}

impl MetricKind {
    /// Returns the kind's schema name.
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Ratio => "ratio",
        }
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
pub struct MetricDef {
    /// Column name, e.g. `imc_read_bytes`. Must be unique in a registry.
    pub name: String,
    /// Kind of the metric.
    pub kind: MetricKind,
    /// One-line description (which hardware counter this stands in for).
    pub help: String,
}

/// Handle to a registered metric: its column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricId(pub usize);

/// An ordered collection of metric definitions.
///
/// Registration order is the column order of every series emitted through
/// a [`crate::Sampler`], so the schema — and therefore the byte-level
/// output — is fully determined by the registration sequence.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    defs: Vec<MetricDef>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a metric and returns its column handle.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered — duplicate columns would
    /// make the emitted series ambiguous.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        kind: MetricKind,
        help: impl Into<String>,
    ) -> MetricId {
        let name = name.into();
        assert!(
            !self.defs.iter().any(|d| d.name == name),
            "duplicate metric name: {name}"
        );
        self.defs.push(MetricDef {
            name,
            kind,
            help: help.into(),
        });
        MetricId(self.defs.len() - 1)
    }

    /// Returns the registered definitions in column order.
    pub fn defs(&self) -> &[MetricDef] {
        &self.defs
    }

    /// Returns the number of registered metrics.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Renders the schema as a JSON document listing each column's name,
    /// kind, and help text. The checked-in schema file CI validates
    /// emitted series against is produced by this method.
    pub fn schema_json(&self) -> String {
        let mut out = String::from("{\n  \"columns\": [\n");
        for (i, d) in self.defs.iter().enumerate() {
            let sep = if i + 1 == self.defs.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"kind\": \"{}\", \"help\": \"{}\"}}{sep}",
                escape_json(&d.name),
                d.kind.as_str(),
                escape_json(&d.help)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A sampled metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer-valued sample (counters, depths).
    U64(u64),
    /// Real-valued sample (ratios).
    F64(f64),
}

impl Value {
    /// Formats the value deterministically, identically for JSON and CSV.
    ///
    /// `u64` renders as a plain integer. Finite `f64` uses Rust's shortest
    /// round-trip rendering; non-finite values (which our ratio helpers
    /// never produce — see `simbase::stats::ratio`) render as `null` so a
    /// bug cannot emit invalid JSON.
    pub fn render(&self) -> String {
        match *self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => v.to_string(),
            Value::F64(_) => "null".to_string(),
        }
    }
}

/// Escapes the characters JSON string literals cannot contain raw.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_order_is_column_order() {
        let mut r = Registry::new();
        let a = r.register("alpha", MetricKind::Counter, "first");
        let b = r.register("beta", MetricKind::Ratio, "second");
        assert_eq!((a, b), (MetricId(0), MetricId(1)));
        assert_eq!(r.defs()[0].name, "alpha");
        assert_eq!(r.defs()[1].name, "beta");
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate metric name")]
    fn duplicate_names_panic() {
        let mut r = Registry::new();
        r.register("x", MetricKind::Counter, "");
        r.register("x", MetricKind::Gauge, "");
    }

    #[test]
    fn schema_json_lists_all_columns() {
        let mut r = Registry::new();
        r.register("a", MetricKind::Counter, "bytes at the iMC");
        r.register("b", MetricKind::Gauge, "queue depth");
        let s = r.schema_json();
        assert!(s.contains("\"name\": \"a\""));
        assert!(s.contains("\"kind\": \"counter\""));
        assert!(s.contains("\"kind\": \"gauge\""));
    }

    #[test]
    fn value_rendering_is_plain_and_json_safe() {
        assert_eq!(Value::U64(42).render(), "42");
        assert_eq!(Value::F64(0.75).render(), "0.75");
        assert_eq!(Value::F64(4.0).render(), "4");
        assert_eq!(Value::F64(f64::NAN).render(), "null");
        assert_eq!(Value::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn json_escaping_covers_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
