//! The sim-clock-driven periodic sampler.

use simbase::Cycles;

use crate::registry::{escape_json, Registry, Value};

/// One emitted sample.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    /// Sample timestamp: the interval boundary the sample accounts for
    /// (simulated cycles), or the poll time for forced samples.
    t: Cycles,
    /// Free-form label of the workload phase the sample was taken in.
    ctx: String,
    /// Column values, in registry order.
    values: Vec<Value>,
}

/// Periodic sampler over a fixed metrics schema.
///
/// The sampler mirrors how `ipmwatch` drives the study: poll the counters
/// at a fixed period and emit one record per period. Simulated time stands
/// in for wall-clock time, so the workload itself paces the samples and the
/// series is a pure function of the (seeded, deterministic) execution.
///
/// Call [`Sampler::due`] at natural workload boundaries (every operation,
/// every batch) and [`Sampler::record`] when it returns `true`; the row is
/// stamped with the *last crossed* interval boundary `k * interval`, and
/// the next sample becomes due at `(k + 1) * interval`. If the workload
/// crosses several boundaries between polls, the skipped boundaries are
/// simply absent — exactly like a sampling profiler that cannot observe
/// faster than its period.
#[derive(Debug, Clone)]
pub struct Sampler {
    registry: Registry,
    interval: Cycles,
    next_boundary: Cycles,
    ctx: String,
    rows: Vec<Row>,
}

impl Sampler {
    /// Creates a sampler emitting at most one row per `interval` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(registry: Registry, interval: Cycles) -> Self {
        assert!(interval > 0, "sample interval must be positive");
        Sampler {
            registry,
            interval,
            next_boundary: interval,
            ctx: String::new(),
            rows: Vec::new(),
        }
    }

    /// Returns the schema this sampler emits.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Returns the configured sample interval.
    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// Sets the phase label stamped into subsequent rows.
    pub fn set_context(&mut self, ctx: impl Into<String>) {
        self.ctx = ctx.into();
    }

    /// Returns `true` once simulated time has crossed the next sample
    /// boundary. Callers use this to skip building the (comparatively
    /// expensive) value row when no sample is due.
    pub fn due(&self, now: Cycles) -> bool {
        now >= self.next_boundary
    }

    /// Records a sample for the boundary `now` has crossed.
    ///
    /// A no-op when no sample is due, so callers may invoke it
    /// unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the registry's column count.
    pub fn record(&mut self, now: Cycles, values: Vec<Value>) {
        if !self.due(now) {
            return;
        }
        let k = now / self.interval;
        self.push_row(k * self.interval, values);
        self.next_boundary = (k + 1) * self.interval;
    }

    /// Records a sample unconditionally, stamped at `now` (an end-of-phase
    /// reading that should appear even if the phase was shorter than one
    /// interval).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the registry's column count.
    pub fn record_final(&mut self, now: Cycles, values: Vec<Value>) {
        self.push_row(now, values);
    }

    fn push_row(&mut self, t: Cycles, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.registry.len(),
            "row width must match the registered schema"
        );
        self.rows.push(Row {
            t,
            ctx: self.ctx.clone(),
            values,
        });
    }

    /// Returns the number of recorded rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialises the series as JSON Lines: one object per row, keys in
    /// registry order, `t` and `ctx` first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str("{\"t\":");
            out.push_str(&row.t.to_string());
            out.push_str(",\"ctx\":\"");
            out.push_str(&escape_json(&row.ctx));
            out.push('"');
            for (def, v) in self.registry.defs().iter().zip(&row.values) {
                out.push_str(",\"");
                out.push_str(&escape_json(&def.name));
                out.push_str("\":");
                out.push_str(&v.render());
            }
            out.push_str("}\n");
        }
        out
    }

    /// Serialises the series as CSV with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t,ctx");
        for def in self.registry.defs() {
            out.push(',');
            out.push_str(&def.name);
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.t.to_string());
            out.push(',');
            // Contexts are simple phase labels; quote defensively anyway.
            if row.ctx.contains([',', '"', '\n']) {
                out.push('"');
                out.push_str(&row.ctx.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(&row.ctx);
            }
            for v in &row.values {
                out.push(',');
                out.push_str(&v.render());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricKind;

    fn two_col_registry() -> Registry {
        let mut r = Registry::new();
        r.register("events", MetricKind::Counter, "");
        r.register("ratio", MetricKind::Ratio, "");
        r
    }

    #[test]
    fn samples_land_on_interval_boundaries() {
        let mut s = Sampler::new(two_col_registry(), 100);
        assert!(!s.due(99));
        assert!(s.due(100));
        s.record(137, vec![Value::U64(1), Value::F64(0.5)]);
        assert!(!s.due(180), "next sample due at 200");
        s.record(205, vec![Value::U64(2), Value::F64(0.5)]);
        let jsonl = s.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"t\":100,"), "got {}", lines[0]);
        assert!(lines[1].starts_with("{\"t\":200,"), "got {}", lines[1]);
    }

    #[test]
    fn skipped_boundaries_are_absent_not_duplicated() {
        let mut s = Sampler::new(two_col_registry(), 100);
        s.record(950, vec![Value::U64(9), Value::F64(1.0)]);
        assert_eq!(s.len(), 1, "one poll emits one row");
        assert!(s.to_jsonl().starts_with("{\"t\":900,"));
        assert!(s.due(1000));
    }

    #[test]
    fn record_before_first_boundary_is_a_no_op() {
        let mut s = Sampler::new(two_col_registry(), 1000);
        s.record(10, vec![Value::U64(0), Value::F64(0.0)]);
        assert!(s.is_empty());
        s.record_final(10, vec![Value::U64(0), Value::F64(0.0)]);
        assert_eq!(s.len(), 1, "record_final always emits");
        assert!(s.to_jsonl().starts_with("{\"t\":10,"));
    }

    #[test]
    fn context_is_stamped_per_row() {
        let mut s = Sampler::new(two_col_registry(), 100);
        s.set_context("warmup");
        s.record(100, vec![Value::U64(1), Value::F64(0.0)]);
        s.set_context("steady");
        s.record(200, vec![Value::U64(2), Value::F64(0.0)]);
        let jsonl = s.to_jsonl();
        assert!(jsonl.contains("\"ctx\":\"warmup\""));
        assert!(jsonl.contains("\"ctx\":\"steady\""));
    }

    #[test]
    fn csv_matches_schema() {
        let mut s = Sampler::new(two_col_registry(), 100);
        s.set_context("p0");
        s.record(100, vec![Value::U64(7), Value::F64(0.25)]);
        let csv = s.to_csv();
        assert_eq!(csv, "t,ctx,events,ratio\n100,p0,7,0.25\n");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut s = Sampler::new(two_col_registry(), 100);
        s.record(100, vec![Value::U64(7)]);
    }

    #[test]
    fn identical_inputs_give_identical_bytes() {
        let run = || {
            let mut s = Sampler::new(two_col_registry(), 100);
            for i in 1..=5u64 {
                s.set_context(format!("phase{i}"));
                s.record(i * 100 + 3, vec![Value::U64(i), Value::F64(i as f64 / 3.0)]);
            }
            (s.to_jsonl(), s.to_csv())
        };
        assert_eq!(run(), run());
    }
}
