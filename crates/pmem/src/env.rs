//! The memory-environment abstraction.
//!
//! Data structures in this project are written against [`PmemEnv`] rather
//! than against the machine directly, for two reasons:
//!
//! 1. the same structure code runs on the simulator (timed, crash-aware)
//!    and on plain host memory (fast, untimed) — the test suites compare
//!    the two for functional equivalence;
//! 2. a structure operation executed by a simulated thread is expressed as
//!    a short-lived [`SimEnv`] borrowing the machine, which is how
//!    multi-threaded experiments interleave operations.

use optane_core::{Machine, ReadError, ThreadId};
use simbase::{Addr, Cycles};
use xpmedia::SparseStore;

/// Memory operations available to persistent data structures.
pub trait PmemEnv {
    /// Loads `buf.len()` bytes from `addr`.
    fn load(&mut self, addr: Addr, buf: &mut [u8]);

    /// Like [`PmemEnv::load`], but surfaces uncorrectable media errors as
    /// a typed [`ReadError`] instead of silently returning garbled bytes.
    /// Backends without a media fault model always succeed.
    fn try_load(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), ReadError> {
        self.load(addr, buf);
        Ok(())
    }

    /// Stores `data` at `addr` through the cache hierarchy.
    fn store(&mut self, addr: Addr, data: &[u8]);

    /// Stores a full aligned cacheline without an ownership read.
    fn store_full_line(&mut self, addr: Addr, data: &[u8; 64]);

    /// Non-temporal (cache-bypassing) store.
    fn nt_store(&mut self, addr: Addr, data: &[u8]);

    /// Cacheline write-back (`clwb`).
    fn clwb(&mut self, addr: Addr);

    /// Cacheline flush-and-invalidate (`clflushopt`).
    fn clflushopt(&mut self, addr: Addr);

    /// Legacy ordered `clflush`; defaults to `clflushopt` semantics on
    /// backends without an ordering cost.
    fn clflush(&mut self, addr: Addr) {
        self.clflushopt(addr);
    }

    /// Store fence.
    fn sfence(&mut self);

    /// Full fence.
    fn mfence(&mut self);

    /// Atomic compare-and-swap on the aligned `u64` at `addr`: writes
    /// `new` iff the current value equals `expected`. Returns the old
    /// value. A full barrier on timed backends (x86 `lock cmpxchg`); the
    /// written value is *not* durable until explicitly persisted.
    fn cas_u64(&mut self, addr: Addr, expected: u64, new: u64) -> u64;

    /// Atomic wrapping fetch-add on the aligned `u64` at `addr`. Returns
    /// the old value. Same barrier and durability caveats as
    /// [`PmemEnv::cas_u64`].
    fn fetch_add_u64(&mut self, addr: Addr, delta: u64) -> u64;

    /// Allocates persistent memory.
    fn alloc(&mut self, len: u64, align: u64) -> Addr;

    /// Allocates volatile (DRAM) memory.
    fn alloc_volatile(&mut self, len: u64, align: u64) -> Addr;

    /// Accounts `cycles` of pure computation.
    fn compute(&mut self, cycles: Cycles);

    /// Returns the current simulated time (0 on untimed backends).
    fn now(&self) -> Cycles;

    // ----- convenience -------------------------------------------------

    /// Loads a little-endian `u64`.
    fn load_u64(&mut self, addr: Addr) -> u64 {
        let mut b = [0u8; 8];
        self.load(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Stores a little-endian `u64`.
    fn store_u64(&mut self, addr: Addr, value: u64) {
        self.store(addr, &value.to_le_bytes());
    }

    /// Loads two independent `u64`s with memory-level parallelism where
    /// the backend supports it (see `Machine::load_pair`). The default is
    /// sequential.
    fn load_u64_pair(&mut self, a: Addr, b: Addr) -> (u64, u64) {
        (self.load_u64(a), self.load_u64(b))
    }

    /// Persists `[addr, addr + len)`: `clwb` every covered cacheline, then
    /// `sfence` — the paper's standard persistence barrier.
    fn persist(&mut self, addr: Addr, len: u64) {
        for cl in simbase::addr::cachelines_covering(addr, len) {
            self.clwb(cl);
        }
        self.sfence();
    }
}

/// Simulator-backed environment: one simulated hardware thread's view of
/// the machine.
pub struct SimEnv<'a> {
    machine: &'a mut Machine,
    tid: ThreadId,
    volatile_backing: bool,
}

impl<'a> SimEnv<'a> {
    /// Wraps `machine` for operations issued by `tid`.
    pub fn new(machine: &'a mut Machine, tid: ThreadId) -> Self {
        SimEnv {
            machine,
            tid,
            volatile_backing: false,
        }
    }

    /// Like [`SimEnv::new`], but `alloc` hands out DRAM instead of PM —
    /// used to run a "persistent" structure on DRAM for comparison, with
    /// all persistence instructions retained (the paper's DRAM CCEH
    /// baseline in §4.1).
    pub fn volatile_backed(machine: &'a mut Machine, tid: ThreadId) -> Self {
        SimEnv {
            machine,
            tid,
            volatile_backing: true,
        }
    }

    /// Returns the thread this environment issues operations as.
    pub fn thread(&self) -> ThreadId {
        self.tid
    }

    /// Returns the underlying machine.
    pub fn machine(&mut self) -> &mut Machine {
        self.machine
    }
}

impl PmemEnv for SimEnv<'_> {
    fn load(&mut self, addr: Addr, buf: &mut [u8]) {
        self.machine.load(self.tid, addr, buf);
    }

    fn try_load(&mut self, addr: Addr, buf: &mut [u8]) -> Result<(), ReadError> {
        self.machine.load_checked(self.tid, addr, buf)
    }

    fn store(&mut self, addr: Addr, data: &[u8]) {
        self.machine.store(self.tid, addr, data);
    }

    fn store_full_line(&mut self, addr: Addr, data: &[u8; 64]) {
        self.machine.store_full_cacheline(self.tid, addr, data);
    }

    fn nt_store(&mut self, addr: Addr, data: &[u8]) {
        self.machine.nt_store(self.tid, addr, data);
    }

    fn clwb(&mut self, addr: Addr) {
        self.machine.clwb(self.tid, addr);
    }

    fn clflushopt(&mut self, addr: Addr) {
        self.machine.clflushopt(self.tid, addr);
    }

    fn clflush(&mut self, addr: Addr) {
        self.machine.clflush(self.tid, addr);
    }

    fn sfence(&mut self) {
        self.machine.sfence(self.tid);
    }

    fn mfence(&mut self) {
        self.machine.mfence(self.tid);
    }

    fn cas_u64(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        self.machine.cas_u64(self.tid, addr, expected, new)
    }

    fn fetch_add_u64(&mut self, addr: Addr, delta: u64) -> u64 {
        self.machine.fetch_add_u64(self.tid, addr, delta)
    }

    fn alloc(&mut self, len: u64, align: u64) -> Addr {
        if self.volatile_backing {
            self.machine.alloc_dram(len, align)
        } else {
            self.machine.alloc_pm(len, align)
        }
    }

    fn alloc_volatile(&mut self, len: u64, align: u64) -> Addr {
        self.machine.alloc_dram(len, align)
    }

    fn compute(&mut self, cycles: Cycles) {
        self.machine.advance(self.tid, cycles);
    }

    fn now(&self) -> Cycles {
        self.machine.now(self.tid)
    }

    fn load_u64_pair(&mut self, a: Addr, b: Addr) -> (u64, u64) {
        let mut ba = [0u8; 8];
        let mut bb = [0u8; 8];
        self.machine.load_pair(self.tid, a, b, &mut ba, &mut bb);
        (u64::from_le_bytes(ba), u64::from_le_bytes(bb))
    }
}

/// Plain-host environment: untimed, crash-free, used for differential
/// testing of data-structure logic.
#[derive(Debug, Default)]
pub struct HostEnv {
    mem: SparseStore,
    volatile: SparseStore,
    next_pm: u64,
    next_dram: u64,
}

/// Host-env PM allocations start here (mirrors the machine's layout).
const HOST_PM_BASE: u64 = 0x0000_1000_0000_0000;
/// Host-env volatile allocations start here.
const HOST_DRAM_BASE: u64 = 0x0000_2000_0000_0000;

impl HostEnv {
    /// Creates an empty host environment.
    pub fn new() -> Self {
        HostEnv {
            mem: SparseStore::new(),
            volatile: SparseStore::new(),
            next_pm: HOST_PM_BASE,
            next_dram: HOST_DRAM_BASE,
        }
    }

    fn backing(&mut self, addr: Addr) -> &mut SparseStore {
        if addr.0 >= HOST_DRAM_BASE {
            &mut self.volatile
        } else {
            &mut self.mem
        }
    }
}

impl PmemEnv for HostEnv {
    fn load(&mut self, addr: Addr, buf: &mut [u8]) {
        if addr.0 >= HOST_DRAM_BASE {
            self.volatile.read(addr, buf);
        } else {
            self.mem.read(addr, buf);
        }
    }

    fn store(&mut self, addr: Addr, data: &[u8]) {
        self.backing(addr).write(addr, data);
    }

    fn store_full_line(&mut self, addr: Addr, data: &[u8; 64]) {
        self.backing(addr).write(addr, data);
    }

    fn nt_store(&mut self, addr: Addr, data: &[u8]) {
        self.backing(addr).write(addr, data);
    }

    fn clwb(&mut self, _addr: Addr) {}

    fn clflushopt(&mut self, _addr: Addr) {}

    fn sfence(&mut self) {}

    fn mfence(&mut self) {}

    fn cas_u64(&mut self, addr: Addr, expected: u64, new: u64) -> u64 {
        assert!(
            addr.0.is_multiple_of(8),
            "locked RMW target must be u64-aligned"
        );
        let old = self.load_u64(addr);
        if old == expected {
            self.store_u64(addr, new);
        }
        old
    }

    fn fetch_add_u64(&mut self, addr: Addr, delta: u64) -> u64 {
        assert!(
            addr.0.is_multiple_of(8),
            "locked RMW target must be u64-aligned"
        );
        let old = self.load_u64(addr);
        self.store_u64(addr, old.wrapping_add(delta));
        old
    }

    fn alloc(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next_pm = (self.next_pm + align - 1) & !(align - 1);
        let a = Addr(self.next_pm);
        self.next_pm += len;
        a
    }

    fn alloc_volatile(&mut self, len: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.next_dram = (self.next_dram + align - 1) & !(align - 1);
        let a = Addr(self.next_dram);
        self.next_dram += len;
        a
    }

    fn compute(&mut self, _cycles: Cycles) {}

    fn now(&self) -> Cycles {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpucache::PrefetchConfig;
    use optane_core::MachineConfig;

    #[test]
    fn host_env_round_trip() {
        let mut env = HostEnv::new();
        let a = env.alloc(64, 64);
        env.store_u64(a, 99);
        assert_eq!(env.load_u64(a), 99);
        let v = env.alloc_volatile(64, 64);
        env.store_u64(v, 7);
        assert_eq!(env.load_u64(v), 7);
        assert_ne!(a, v);
    }

    #[test]
    fn sim_env_round_trip_and_time() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(64, 64);
        env.store_u64(a, 123);
        env.persist(a, 8);
        assert_eq!(env.load_u64(a), 123);
        assert!(env.now() > 0);
    }

    #[test]
    fn differential_smoke() {
        // The same little program produces the same memory contents on
        // both backends.
        fn program<E: PmemEnv>(env: &mut E) -> (Addr, Vec<u64>) {
            let base = env.alloc(1024, 256);
            for i in 0..16u64 {
                env.store_u64(base.add(i * 8), i * i);
            }
            env.persist(base, 128);
            let out = (0..16u64).map(|i| env.load_u64(base.add(i * 8))).collect();
            (base, out)
        }
        let mut host = HostEnv::new();
        let (_, host_vals) = program(&mut host);
        let mut m = Machine::new(MachineConfig::g2(PrefetchConfig::all(), 6));
        let t = m.spawn(0);
        let mut sim = SimEnv::new(&mut m, t);
        let (_, sim_vals) = program(&mut sim);
        assert_eq!(host_vals, sim_vals);
    }

    #[test]
    fn persist_covers_straddling_ranges() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(256, 64);
        // Write 16 bytes straddling a cacheline boundary and persist.
        env.store(a.add(56), &[0xAB; 16]);
        env.persist(a.add(56), 16);
        drop(env);
        m.power_fail(optane_core::CrashPolicy::LoseUnflushed);
        let mut buf = [0u8; 16];
        m.peek(a.add(56), &mut buf);
        assert_eq!(buf, [0xAB; 16], "both touched cachelines were persisted");
    }
}
