//! Persistent-memory programming layer.
//!
//! This crate is what a downstream user programs against: it wraps the raw
//! machine operations in the vocabulary of persistent-memory software —
//! pools, persist barriers, persistency models, and write-ahead logs.
//!
//! - [`env::PmemEnv`] abstracts memory access so the same data-structure
//!   code runs on the cycle-accounted simulator ([`env::SimEnv`]) and on
//!   plain host memory ([`env::HostEnv`]) for differential testing.
//! - [`persist`] provides persist barriers and the strict/relaxed
//!   persistency models compared in §3.6 of the paper.
//! - [`pool`] provides a crash-recoverable region allocator with a named
//!   root, in the spirit of `libpmemobj`.
//! - [`log`] provides redo and undo logs with commit records and recovery,
//!   used by the B+-tree case study (§4.2).

#![forbid(unsafe_code)]

pub mod env;
pub mod log;
pub mod persist;
pub mod pool;

pub use env::{HostEnv, PmemEnv, SimEnv};
pub use log::{RedoLog, RingRedoLog, UndoLog};
pub use persist::{persist_range, persist_range_unfenced, EpochPersist, PersistMode};
pub use pool::PmPool;
