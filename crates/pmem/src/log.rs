//! Redo and undo write-ahead logs.
//!
//! The paper's B+-tree case study (§4.2) redirects in-place cacheline
//! updates into an *out-of-place redo log*: each update is appended as a
//! one-cacheline log entry (address, length, payload), persisted
//! immediately, and the batch is made atomic by an 8-byte commit flag. A
//! DRAM-side mirror of the entries lets the writeback read the payloads
//! without touching the just-persisted PM cachelines — the whole point of
//! the optimization is never to read a recently persisted line.
//!
//! [`UndoLog`] is the complementary primitive (record old values, roll back
//! on crash), provided for completeness and used by tests and examples.
//!
//! Both logs keep entries one per cacheline, as the paper describes, with
//! payloads up to 48 bytes (larger writes are split by the caller or via
//! [`RedoLog::append_large`]).

use simbase::{Addr, CACHELINE_BYTES};

use crate::env::PmemEnv;

/// Maximum payload of a single one-cacheline log entry.
pub const MAX_ENTRY_PAYLOAD: usize = 48;

const OFF_FLAG: u64 = 0;
const OFF_COUNT: u64 = 8;
/// Entries start one cacheline in.
const OFF_ENTRIES: u64 = 64;

/// Flag value marking a committed redo log / an active undo log.
const FLAG_SET: u64 = 0x4C4F_4721; // "LOG!"

fn entry_addr(base: Addr, i: u64) -> Addr {
    base.add(OFF_ENTRIES + i * CACHELINE_BYTES)
}

/// Encodes one entry into a cacheline image.
fn encode_entry(target: Addr, payload: &[u8]) -> [u8; 64] {
    debug_assert!(payload.len() <= MAX_ENTRY_PAYLOAD);
    let mut line = [0u8; 64];
    line[0..8].copy_from_slice(&target.0.to_le_bytes());
    line[8..16].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    line[16..16 + payload.len()].copy_from_slice(payload);
    line
}

/// Decodes an entry cacheline into `(target, payload)`.
fn decode_entry(line: &[u8; 64]) -> (Addr, Vec<u8>) {
    let target = Addr(u64::from_le_bytes(line[0..8].try_into().expect("8 bytes")));
    let len = u64::from_le_bytes(line[8..16].try_into().expect("8 bytes")) as usize;
    let len = len.min(MAX_ENTRY_PAYLOAD);
    (target, line[16..16 + len].to_vec())
}

/// An out-of-place redo log with a commit record.
///
/// # Examples
///
/// ```
/// use pmem::{HostEnv, PmemEnv, RedoLog};
///
/// let mut env = HostEnv::new();
/// let target = env.alloc(64, 64);
/// let mut log = RedoLog::create(&mut env, 8);
/// log.begin(&mut env);
/// log.append(&mut env, target, &42u64.to_le_bytes());
/// log.commit(&mut env);
/// log.apply_and_retire(&mut env);
/// assert_eq!(env.load_u64(target), 42);
/// ```
#[derive(Debug)]
pub struct RedoLog {
    base: Addr,
    capacity: u64,
    count: u64,
    /// DRAM-side mirror of the current batch (volatile by construction).
    mirror: Vec<(Addr, Vec<u8>)>,
}

impl RedoLog {
    /// Allocates a log with room for `capacity` entries.
    pub fn create<E: PmemEnv>(env: &mut E, capacity: u64) -> Self {
        let base = env.alloc(OFF_ENTRIES + capacity * CACHELINE_BYTES, CACHELINE_BYTES);
        env.store_u64(base.add(OFF_FLAG), 0);
        env.store_u64(base.add(OFF_COUNT), 0);
        env.persist(base, 16);
        RedoLog {
            base,
            capacity,
            count: 0,
            mirror: Vec::new(),
        }
    }

    /// Returns the log's base address (for reattaching after a crash).
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Returns the number of entries in the open batch.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Returns `true` if the open batch is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Opens a new batch (the previous batch must have been applied).
    pub fn begin<E: PmemEnv>(&mut self, env: &mut E) {
        env.store_u64(self.base.add(OFF_FLAG), 0);
        env.persist(self.base.add(OFF_FLAG), 8);
        self.count = 0;
        self.mirror.clear();
    }

    /// Appends one update (`payload.len() <= MAX_ENTRY_PAYLOAD`) and
    /// persists the entry immediately, as the paper's scheme does.
    ///
    /// # Panics
    ///
    /// Panics if the payload is too large or the log is full.
    pub fn append<E: PmemEnv>(&mut self, env: &mut E, target: Addr, payload: &[u8]) {
        assert!(
            payload.len() <= MAX_ENTRY_PAYLOAD,
            "payload exceeds one-cacheline entry"
        );
        assert!(self.count < self.capacity, "redo log is full");
        let line = encode_entry(target, payload);
        let slot = entry_addr(self.base, self.count);
        env.store_full_line(slot, &line);
        env.persist(slot, CACHELINE_BYTES);
        self.mirror.push((target, payload.to_vec()));
        self.count += 1;
    }

    /// Appends an arbitrarily long update by splitting it into entries.
    pub fn append_large<E: PmemEnv>(&mut self, env: &mut E, target: Addr, payload: &[u8]) {
        for (i, chunk) in payload.chunks(MAX_ENTRY_PAYLOAD).enumerate() {
            self.append(env, target.add((i * MAX_ENTRY_PAYLOAD) as u64), chunk);
        }
    }

    /// Commits the batch: persists the entry count and sets the commit
    /// flag with an 8-byte atomic write.
    pub fn commit<E: PmemEnv>(&mut self, env: &mut E) {
        env.store_u64(self.base.add(OFF_COUNT), self.count);
        env.persist(self.base.add(OFF_COUNT), 8);
        env.store_u64(self.base.add(OFF_FLAG), FLAG_SET);
        env.persist(self.base.add(OFF_FLAG), 8);
    }

    /// Applies the committed batch to its targets from the DRAM mirror
    /// (plain stores), flushes the touched cachelines once, and retires
    /// the log.
    ///
    /// The paper's sketch clears the flag right after the writeback; we
    /// additionally flush the targets first, because reclaiming the log
    /// while the written-back lines are still volatile would lose them in
    /// a crash. The flush happens once per batch (after all updates), so
    /// the §4.2 property that matters — never *reading* a recently
    /// persisted cacheline — is preserved.
    pub fn apply_and_retire<E: PmemEnv>(&mut self, env: &mut E) {
        let updates = std::mem::take(&mut self.mirror);
        let mut touched: Vec<Addr> = Vec::with_capacity(updates.len());
        for (target, payload) in &updates {
            env.store(*target, payload);
            let cl = target.cacheline();
            if touched.last() != Some(&cl) {
                touched.push(cl);
            }
        }
        touched.dedup();
        for cl in touched {
            env.clwb(cl);
        }
        env.sfence();
        env.store_u64(self.base.add(OFF_FLAG), 0);
        env.persist(self.base.add(OFF_FLAG), 8);
        self.count = 0;
    }

    /// Crash recovery: if a committed batch is present at `base`, replays
    /// it (with persistence) and retires the log.
    ///
    /// Returns the number of entries replayed.
    pub fn recover<E: PmemEnv>(env: &mut E, base: Addr) -> u64 {
        if env.load_u64(base.add(OFF_FLAG)) != FLAG_SET {
            return 0;
        }
        let count = env.load_u64(base.add(OFF_COUNT));
        for i in 0..count {
            let mut line = [0u8; 64];
            env.load(entry_addr(base, i), &mut line);
            let (target, payload) = decode_entry(&line);
            env.store(target, &payload);
            env.persist(target, payload.len() as u64);
        }
        env.store_u64(base.add(OFF_FLAG), 0);
        env.persist(base.add(OFF_FLAG), 8);
        count
    }
}

/// A ring-structured redo log with *deferred reclamation*.
///
/// The plain [`RedoLog`] must make its targets durable before retiring a
/// batch, which on G1 parts means invalidating the very cachelines the
/// next operation will read — reintroducing the read-after-persist problem
/// the §4.2 optimization exists to avoid. `RingRedoLog` instead keeps
/// committed batches in a ring and defers the target flush until log space
/// is reclaimed, amortizing it over many operations (and usually hitting
/// lines that natural cache evictions have already persisted).
///
/// Entry layout (one cacheline each): `[0]` sequence+1, `[8]` kind
/// (update/commit), `[16]` target, `[24]` length, `[32..]` payload
/// (≤ 32 bytes). The header cacheline persists `start_seq`, the oldest
/// live sequence number. Recovery replays contiguous entries from
/// `start_seq` up to the last commit marker.
#[derive(Debug)]
pub struct RingRedoLog {
    base: Addr,
    capacity: u64,
    next_seq: u64,
    start_seq: u64,
    /// Sequence just past the last commit marker.
    last_committed: u64,
    /// Target cachelines of the current (uncommitted) batch.
    current_lines: Vec<Addr>,
    /// Target cachelines of committed-but-unreclaimed batches.
    committed_lines: Vec<Addr>,
}

/// Maximum payload of one ring entry.
pub const MAX_RING_PAYLOAD: usize = 32;

const RING_KIND_UPDATE: u64 = 1;
const RING_KIND_COMMIT: u64 = 2;
const RING_MAGIC: u64 = 0x5249_4E47_4C4F_4721; // "RINGLOG!"

impl RingRedoLog {
    /// Allocates a ring with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is smaller than 8 entries.
    pub fn create<E: PmemEnv>(env: &mut E, capacity: u64) -> Self {
        assert!(capacity >= 8, "ring capacity too small");
        let base = env.alloc(OFF_ENTRIES + capacity * CACHELINE_BYTES, CACHELINE_BYTES);
        env.store_u64(base, RING_MAGIC);
        env.store_u64(base.add(8), 0); // start_seq
        env.store_u64(base.add(16), capacity);
        env.persist(base, 24);
        RingRedoLog {
            base,
            capacity,
            next_seq: 0,
            start_seq: 0,
            last_committed: 0,
            current_lines: Vec::new(),
            committed_lines: Vec::new(),
        }
    }

    /// Returns the ring's base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    fn slot(&self, seq: u64) -> Addr {
        self.base
            .add(OFF_ENTRIES + (seq % self.capacity) * CACHELINE_BYTES)
    }

    fn write_entry<E: PmemEnv>(&mut self, env: &mut E, kind: u64, target: Addr, payload: &[u8]) {
        let mut line = [0u8; 64];
        line[0..8].copy_from_slice(&(self.next_seq + 1).to_le_bytes());
        line[8..16].copy_from_slice(&kind.to_le_bytes());
        line[16..24].copy_from_slice(&target.0.to_le_bytes());
        line[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        line[32..32 + payload.len()].copy_from_slice(payload);
        let slot = self.slot(self.next_seq);
        env.store_full_line(slot, &line);
        env.persist(slot, CACHELINE_BYTES);
        self.next_seq += 1;
    }

    /// Appends one update to the current batch, persisting the entry
    /// immediately (as the paper's scheme does).
    ///
    /// # Panics
    ///
    /// Panics if the payload exceeds [`MAX_RING_PAYLOAD`].
    pub fn append_update<E: PmemEnv>(&mut self, env: &mut E, target: Addr, payload: &[u8]) {
        assert!(payload.len() <= MAX_RING_PAYLOAD, "ring payload too large");
        self.maybe_reclaim(env);
        self.write_entry(env, RING_KIND_UPDATE, target, payload);
        let cl = target.cacheline();
        if self.current_lines.last() != Some(&cl) {
            self.current_lines.push(cl);
        }
    }

    /// Commits the current batch with a one-cacheline commit marker.
    pub fn commit<E: PmemEnv>(&mut self, env: &mut E) {
        self.maybe_reclaim(env);
        self.write_entry(env, RING_KIND_COMMIT, Addr(0), &[]);
        self.last_committed = self.next_seq;
        self.committed_lines.append(&mut self.current_lines);
    }

    /// Reclaims log space if the ring is nearly full: flushes every target
    /// cacheline of committed batches (making their plain-store writebacks
    /// durable), then advances the persistent `start_seq`.
    fn maybe_reclaim<E: PmemEnv>(&mut self, env: &mut E) {
        if self.next_seq - self.start_seq < self.capacity - 4 {
            return;
        }
        self.reclaim(env);
        assert!(
            self.next_seq - self.start_seq < self.capacity - 4,
            "a single batch exceeds the ring capacity"
        );
    }

    /// Forces reclamation (checkpoint): flush committed targets, advance
    /// `start_seq`.
    pub fn reclaim<E: PmemEnv>(&mut self, env: &mut E) {
        let mut lines = std::mem::take(&mut self.committed_lines);
        lines.sort();
        lines.dedup();
        for cl in lines {
            env.clwb(cl);
        }
        env.sfence();
        env.store_u64(self.base.add(8), self.last_committed);
        env.persist(self.base.add(8), 8);
        self.start_seq = self.last_committed;
    }

    /// Crash recovery: replays all committed batches in the ring at
    /// `base`, persisting their targets, and resets the ring.
    ///
    /// Returns the number of update entries replayed.
    pub fn recover<E: PmemEnv>(env: &mut E, base: Addr) -> u64 {
        if env.load_u64(base) != RING_MAGIC {
            return 0;
        }
        let start_seq = env.load_u64(base.add(8));
        let capacity = env.load_u64(base.add(16));
        if capacity == 0 {
            return 0;
        }
        let mut applied = 0u64;
        let mut batch: Vec<(Addr, Vec<u8>)> = Vec::new();
        let mut seq = start_seq;
        loop {
            let slot = base.add(OFF_ENTRIES + (seq % capacity) * CACHELINE_BYTES);
            let mut line = [0u8; 64];
            env.load(slot, &mut line);
            let tag = u64::from_le_bytes(line[0..8].try_into().expect("8 bytes"));
            if tag != seq + 1 {
                break; // end of contiguous entries
            }
            let kind = u64::from_le_bytes(line[8..16].try_into().expect("8 bytes"));
            if kind == RING_KIND_COMMIT {
                for (target, payload) in batch.drain(..) {
                    env.store(target, &payload);
                    env.persist(target, payload.len() as u64);
                    applied += 1;
                }
            } else if kind == RING_KIND_UPDATE {
                let target = Addr(u64::from_le_bytes(
                    line[16..24].try_into().expect("8 bytes"),
                ));
                let len = (u64::from_le_bytes(line[24..32].try_into().expect("8 bytes")) as usize)
                    .min(MAX_RING_PAYLOAD);
                batch.push((target, line[32..32 + len].to_vec()));
            } else {
                break; // corrupt entry: stop conservatively
            }
            seq += 1;
            if seq - start_seq >= capacity {
                break;
            }
        }
        // Retire everything (uncommitted tail entries are discarded).
        env.store_u64(base.add(8), seq);
        env.persist(base.add(8), 8);
        applied
    }
}

/// An undo log: records old values before in-place updates and rolls them
/// back if the transaction did not commit.
#[derive(Debug)]
pub struct UndoLog {
    base: Addr,
    capacity: u64,
    count: u64,
}

impl UndoLog {
    /// Allocates a log with room for `capacity` entries.
    pub fn create<E: PmemEnv>(env: &mut E, capacity: u64) -> Self {
        let base = env.alloc(OFF_ENTRIES + capacity * CACHELINE_BYTES, CACHELINE_BYTES);
        env.store_u64(base.add(OFF_FLAG), 0);
        env.store_u64(base.add(OFF_COUNT), 0);
        env.persist(base, 16);
        UndoLog {
            base,
            capacity,
            count: 0,
        }
    }

    /// Returns the log's base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Opens a transaction: marks the log active.
    pub fn begin<E: PmemEnv>(&mut self, env: &mut E) {
        self.count = 0;
        env.store_u64(self.base.add(OFF_COUNT), 0);
        env.persist(self.base.add(OFF_COUNT), 8);
        env.store_u64(self.base.add(OFF_FLAG), FLAG_SET);
        env.persist(self.base.add(OFF_FLAG), 8);
    }

    /// Records the current contents of `[target, target + len)` before the
    /// caller overwrites it. `len <= MAX_ENTRY_PAYLOAD`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is too large or the log is full.
    pub fn record<E: PmemEnv>(&mut self, env: &mut E, target: Addr, len: usize) {
        assert!(len <= MAX_ENTRY_PAYLOAD, "undo entry too large");
        assert!(self.count < self.capacity, "undo log is full");
        let mut old = vec![0u8; len];
        env.load(target, &mut old);
        let line = encode_entry(target, &old);
        let slot = entry_addr(self.base, self.count);
        env.store_full_line(slot, &line);
        env.persist(slot, CACHELINE_BYTES);
        self.count += 1;
        env.store_u64(self.base.add(OFF_COUNT), self.count);
        env.persist(self.base.add(OFF_COUNT), 8);
    }

    /// Commits: the caller's updates are durable, discard the log.
    pub fn commit<E: PmemEnv>(&mut self, env: &mut E) {
        env.store_u64(self.base.add(OFF_FLAG), 0);
        env.persist(self.base.add(OFF_FLAG), 8);
        self.count = 0;
    }

    /// Crash recovery: if an active (uncommitted) transaction is present
    /// at `base`, rolls its targets back in reverse order.
    ///
    /// Returns the number of entries rolled back.
    pub fn recover<E: PmemEnv>(env: &mut E, base: Addr) -> u64 {
        if env.load_u64(base.add(OFF_FLAG)) != FLAG_SET {
            return 0;
        }
        let count = env.load_u64(base.add(OFF_COUNT));
        for i in (0..count).rev() {
            let mut line = [0u8; 64];
            env.load(entry_addr(base, i), &mut line);
            let (target, payload) = decode_entry(&line);
            env.store(target, &payload);
            env.persist(target, payload.len() as u64);
        }
        env.store_u64(base.add(OFF_FLAG), 0);
        env.persist(base.add(OFF_FLAG), 8);
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{HostEnv, SimEnv};
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, Machine, MachineConfig};

    fn sim() -> Machine {
        Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1))
    }

    #[test]
    fn redo_normal_path_applies_updates() {
        let mut env = HostEnv::new();
        let target = env.alloc(256, 64);
        let mut log = RedoLog::create(&mut env, 16);
        log.begin(&mut env);
        log.append(&mut env, target, &7u64.to_le_bytes());
        log.append(&mut env, target.add(64), &9u64.to_le_bytes());
        log.commit(&mut env);
        log.apply_and_retire(&mut env);
        assert_eq!(env.load_u64(target), 7);
        assert_eq!(env.load_u64(target.add(64)), 9);
        assert!(log.is_empty());
    }

    #[test]
    fn redo_recovers_committed_batch_after_crash() {
        let mut m = sim();
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let target = env.alloc(64, 64);
        let mut log = RedoLog::create(&mut env, 4);
        let base = log.base();
        log.begin(&mut env);
        log.append(&mut env, target, &42u64.to_le_bytes());
        log.commit(&mut env);
        // Crash before the writeback: the target was never written.
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(target), 0);
        let mut env = SimEnv::new(&mut m, t);
        let replayed = RedoLog::recover(&mut env, base);
        assert_eq!(replayed, 1);
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(target), 42, "recovery replays with persistence");
    }

    #[test]
    fn redo_uncommitted_batch_is_ignored() {
        let mut m = sim();
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let target = env.alloc(64, 64);
        let mut log = RedoLog::create(&mut env, 4);
        let base = log.base();
        log.begin(&mut env);
        log.append(&mut env, target, &42u64.to_le_bytes());
        // No commit.
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, t);
        assert_eq!(RedoLog::recover(&mut env, base), 0);
        assert_eq!(env.load_u64(target), 0);
    }

    #[test]
    fn redo_recovery_is_idempotent() {
        let mut env = HostEnv::new();
        let target = env.alloc(64, 64);
        let mut log = RedoLog::create(&mut env, 4);
        log.begin(&mut env);
        log.append(&mut env, target, &5u64.to_le_bytes());
        log.commit(&mut env);
        assert_eq!(RedoLog::recover(&mut env, log.base()), 1);
        assert_eq!(RedoLog::recover(&mut env, log.base()), 0, "flag cleared");
        assert_eq!(env.load_u64(target), 5);
    }

    #[test]
    fn redo_append_large_splits() {
        let mut env = HostEnv::new();
        let target = env.alloc(256, 64);
        let mut log = RedoLog::create(&mut env, 16);
        log.begin(&mut env);
        let payload: Vec<u8> = (0..120).collect();
        log.append_large(&mut env, target, &payload);
        assert_eq!(log.len(), 3); // 48 + 48 + 24
        log.commit(&mut env);
        log.apply_and_retire(&mut env);
        let mut got = vec![0u8; 120];
        env.load(target, &mut got);
        assert_eq!(got, payload);
    }

    #[test]
    #[should_panic(expected = "redo log is full")]
    fn redo_overflow_panics() {
        let mut env = HostEnv::new();
        let target = env.alloc(64, 64);
        let mut log = RedoLog::create(&mut env, 1);
        log.begin(&mut env);
        log.append(&mut env, target, &[1]);
        log.append(&mut env, target, &[2]);
    }

    #[test]
    fn undo_rolls_back_uncommitted_transaction() {
        let mut m = sim();
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let target = env.alloc(64, 64);
        env.store_u64(target, 100);
        env.persist(target, 8);
        let mut log = UndoLog::create(&mut env, 4);
        let base = log.base();
        log.begin(&mut env);
        log.record(&mut env, target, 8);
        // In-place update, persisted — then crash before commit.
        env.store_u64(target, 999);
        env.persist(target, 8);
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, t);
        assert_eq!(env.load_u64(target), 999, "update was persisted");
        assert_eq!(UndoLog::recover(&mut env, base), 1);
        assert_eq!(env.load_u64(target), 100, "rolled back");
    }

    #[test]
    fn undo_committed_transaction_stays() {
        let mut env = HostEnv::new();
        let target = env.alloc(64, 64);
        env.store_u64(target, 1);
        let mut log = UndoLog::create(&mut env, 4);
        log.begin(&mut env);
        log.record(&mut env, target, 8);
        env.store_u64(target, 2);
        log.commit(&mut env);
        assert_eq!(UndoLog::recover(&mut env, log.base()), 0);
        assert_eq!(env.load_u64(target), 2);
    }

    #[test]
    fn undo_rollback_is_in_reverse_order() {
        let mut env = HostEnv::new();
        let target = env.alloc(64, 64);
        env.store_u64(target, 1);
        let mut log = UndoLog::create(&mut env, 4);
        log.begin(&mut env);
        log.record(&mut env, target, 8); // old = 1
        env.store_u64(target, 2);
        log.record(&mut env, target, 8); // old = 2
        env.store_u64(target, 3);
        // Reverse rollback must restore 1, not 2.
        assert_eq!(UndoLog::recover(&mut env, log.base()), 2);
        assert_eq!(env.load_u64(target), 1);
    }

    #[test]
    fn ring_normal_path_with_writeback() {
        let mut env = HostEnv::new();
        let target = env.alloc(256, 64);
        let mut ring = RingRedoLog::create(&mut env, 16);
        for batch in 0..3u64 {
            for i in 0..2u64 {
                let v = batch * 10 + i;
                ring.append_update(&mut env, target.add_cachelines(i), &v.to_le_bytes());
            }
            ring.commit(&mut env);
            for i in 0..2u64 {
                env.store_u64(target.add_cachelines(i), batch * 10 + i);
            }
        }
        assert_eq!(env.load_u64(target), 20);
        assert_eq!(env.load_u64(target.add_cachelines(1)), 21);
    }

    #[test]
    fn ring_recovers_committed_batches_after_crash() {
        let mut m = sim();
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let target = env.alloc(256, 64);
        let mut ring = RingRedoLog::create(&mut env, 16);
        let base = ring.base();
        // Two committed batches, writebacks never flushed, plus an
        // uncommitted tail that must be discarded.
        for batch in 0..2u64 {
            ring.append_update(&mut env, target, &(batch + 1).to_le_bytes());
            ring.append_update(
                &mut env,
                target.add_cachelines(1),
                &(batch + 100).to_le_bytes(),
            );
            ring.commit(&mut env);
            // Plain, unflushed writebacks (lost in the crash).
            env.store_u64(target, batch + 1);
            env.store_u64(target.add_cachelines(1), batch + 100);
        }
        ring.append_update(&mut env, target, &999u64.to_le_bytes()); // torn
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, t);
        let applied = RingRedoLog::recover(&mut env, base);
        assert_eq!(applied, 4, "both committed batches replay in order");
        assert_eq!(env.load_u64(target), 2, "latest committed value wins");
        assert_eq!(env.load_u64(target.add_cachelines(1)), 101);
        drop(env);
        // Replayed values are durable.
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(target), 2);
    }

    #[test]
    fn ring_reclaim_makes_writebacks_durable() {
        let mut m = sim();
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let target = env.alloc(64, 64);
        let mut ring = RingRedoLog::create(&mut env, 16);
        ring.append_update(&mut env, target, &7u64.to_le_bytes());
        ring.commit(&mut env);
        env.store_u64(target, 7);
        ring.reclaim(&mut env);
        let base = ring.base();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, t);
        assert_eq!(
            RingRedoLog::recover(&mut env, base),
            0,
            "reclaimed batches are gone from the log"
        );
        assert_eq!(env.load_u64(target), 7, "reclaim flushed the writeback");
    }

    #[test]
    fn ring_wraps_and_keeps_working() {
        let mut env = HostEnv::new();
        let target = env.alloc(64, 64);
        let mut ring = RingRedoLog::create(&mut env, 8);
        // Far more batches than the ring holds: automatic reclamation
        // must kick in and the log must never corrupt itself.
        for v in 0..50u64 {
            ring.append_update(&mut env, target, &v.to_le_bytes());
            ring.commit(&mut env);
            env.store_u64(target, v);
        }
        assert_eq!(env.load_u64(target), 49);
        // Recovery after graceful operation replays at most the tail.
        let base = ring.base();
        let replayed = RingRedoLog::recover(&mut env, base);
        assert!(replayed <= 8);
        assert_eq!(env.load_u64(target), 49);
    }

    #[test]
    fn ring_recover_on_garbage_is_a_noop() {
        let mut env = HostEnv::new();
        let junk = env.alloc(4096, 64);
        assert_eq!(RingRedoLog::recover(&mut env, junk), 0);
    }

    #[test]
    fn entry_encoding_round_trips() {
        let payload: Vec<u8> = (0..48).collect();
        let line = encode_entry(Addr(0xABCD), &payload);
        let (target, got) = decode_entry(&line);
        assert_eq!(target, Addr(0xABCD));
        assert_eq!(got, payload);
    }
}
