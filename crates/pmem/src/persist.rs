//! Persist barriers and persistency models.
//!
//! §3.6 of the paper compares the two ends of the persistency-model
//! spectrum: *strict* (every store is immediately followed by a
//! flush-and-fence) and *relaxed* (stores and flushes proceed unordered and
//! a single fence closes a whole batch). [`PersistMode`] lets workload code
//! switch between them with one parameter.

use simbase::{addr::cachelines_covering, Addr};

use crate::env::PmemEnv;

/// Which persistency model a workload runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// A persistence barrier (flush + fence) after every write.
    Strict,
    /// Flushes are issued but the fence is deferred to the end of the
    /// batch (the paper's most relaxed comparison point).
    Relaxed,
}

impl PersistMode {
    /// Applies the per-write part of the model: always flush; fence only
    /// under [`PersistMode::Strict`].
    pub fn after_write<E: PmemEnv>(&self, env: &mut E, addr: Addr, len: u64) {
        for cl in cachelines_covering(addr, len) {
            env.clwb(cl);
        }
        if *self == PersistMode::Strict {
            env.sfence();
        }
    }

    /// Applies the end-of-batch part of the model: a fence that makes the
    /// whole batch persistent.
    pub fn end_batch<E: PmemEnv>(&self, env: &mut E) {
        env.sfence();
    }
}

/// Epoch persistency (Pelley et al., the [24] of the paper's §3.6):
/// writes *within* an epoch may persist in any order; an epoch boundary
/// inserts one fence that orders every earlier flush before all later
/// writes. Sits between [`PersistMode::Strict`] (epoch length 1) and
/// [`PersistMode::Relaxed`] (one epoch for the whole batch).
///
/// # Examples
///
/// ```
/// use pmem::{EpochPersist, HostEnv, PmemEnv};
///
/// let mut env = HostEnv::new();
/// let a = env.alloc(4096, 64);
/// let mut epoch = EpochPersist::new(8);
/// for i in 0..32u64 {
///     env.store_u64(a.add(i * 64), i);
///     epoch.write(&mut env, a.add(i * 64), 8);
/// }
/// epoch.close(&mut env); // everything durable from here
/// assert_eq!(epoch.epochs_closed(), 4);
/// ```
#[derive(Debug)]
pub struct EpochPersist {
    epoch_len: u64,
    pending: u64,
    closed: u64,
}

impl EpochPersist {
    /// Creates an epoch context committing every `epoch_len` writes.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be positive");
        EpochPersist {
            epoch_len,
            pending: 0,
            closed: 0,
        }
    }

    /// Flushes one write; closes the epoch (fence) when it is full.
    pub fn write<E: PmemEnv>(&mut self, env: &mut E, addr: Addr, len: u64) {
        for cl in cachelines_covering(addr, len) {
            env.clwb(cl);
        }
        self.pending += 1;
        if self.pending >= self.epoch_len {
            self.close(env);
        }
    }

    /// Closes the current epoch with a fence (no-op if it is empty).
    pub fn close<E: PmemEnv>(&mut self, env: &mut E) {
        if self.pending > 0 {
            env.sfence();
            self.pending = 0;
            self.closed += 1;
        }
    }

    /// Returns the number of epochs closed so far.
    pub fn epochs_closed(&self) -> u64 {
        self.closed
    }
}

/// Flushes and fences `[addr, addr + len)` — the canonical persistence
/// barrier.
pub fn persist_range<E: PmemEnv>(env: &mut E, addr: Addr, len: u64) {
    for cl in cachelines_covering(addr, len) {
        env.clwb(cl);
    }
    env.sfence();
}

/// Flushes `[addr, addr + len)` without the trailing fence (for callers
/// that batch several ranges under one fence).
pub fn persist_range_unfenced<E: PmemEnv>(env: &mut E, addr: Addr, len: u64) {
    for cl in cachelines_covering(addr, len) {
        env.clwb(cl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{HostEnv, SimEnv};
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, Machine, MachineConfig};

    #[test]
    fn strict_fences_every_write() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(4096, 64);
        for i in 0..8u64 {
            env.store_u64(a.add_cachelines(i), i);
            PersistMode::Strict.after_write(&mut env, a.add_cachelines(i), 8);
        }
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        for i in 0..8u64 {
            assert_eq!(m.peek_u64(a.add_cachelines(i)), i);
        }
    }

    #[test]
    fn relaxed_is_durable_after_end_batch() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(4096, 64);
        for i in 0..8u64 {
            env.store_u64(a.add_cachelines(i), i + 1);
            PersistMode::Relaxed.after_write(&mut env, a.add_cachelines(i), 8);
        }
        PersistMode::Relaxed.end_batch(&mut env);
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        for i in 0..8u64 {
            assert_eq!(m.peek_u64(a.add_cachelines(i)), i + 1);
        }
    }

    #[test]
    fn relaxed_is_cheaper_than_strict() {
        let run = |mode: PersistMode| -> u64 {
            let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
            let t = m.spawn(0);
            let mut env = SimEnv::new(&mut m, t);
            let a = env.alloc(64 * 256, 256);
            let start = env.now();
            for i in 0..64u64 {
                env.store_u64(a.add_xplines(i), i);
                mode.after_write(&mut env, a.add_xplines(i), 8);
            }
            mode.end_batch(&mut env);
            env.now() - start
        };
        let strict = run(PersistMode::Strict);
        let relaxed = run(PersistMode::Relaxed);
        assert!(
            relaxed < strict,
            "relaxed ({relaxed}) should beat strict ({strict})"
        );
    }

    #[test]
    fn persist_range_unfenced_then_fence_is_equivalent() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(256, 64);
        env.store(a, &[1u8; 200]);
        persist_range_unfenced(&mut env, a, 200);
        env.sfence();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut buf = [0u8; 200];
        m.peek(a, &mut buf);
        assert_eq!(buf, [1u8; 200]);
    }

    #[test]
    fn epoch_sits_between_strict_and_relaxed() {
        let run = |mode: u8| -> u64 {
            let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
            let t = m.spawn(0);
            let mut env = SimEnv::new(&mut m, t);
            let a = env.alloc(64 * 256, 256);
            let start = env.now();
            let mut epoch = EpochPersist::new(8);
            for i in 0..64u64 {
                env.store_u64(a.add_xplines(i), i);
                match mode {
                    0 => PersistMode::Strict.after_write(&mut env, a.add_xplines(i), 8),
                    1 => epoch.write(&mut env, a.add_xplines(i), 8),
                    _ => PersistMode::Relaxed.after_write(&mut env, a.add_xplines(i), 8),
                }
            }
            epoch.close(&mut env);
            env.sfence();
            env.now() - start
        };
        let strict = run(0);
        let epoch = run(1);
        let relaxed = run(2);
        assert!(
            relaxed <= epoch && epoch <= strict,
            "relaxed {relaxed} <= epoch {epoch} <= strict {strict}"
        );
        assert!(epoch < strict, "epoch saves fences over strict");
    }

    #[test]
    fn epoch_close_makes_writes_durable() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let a = env.alloc(4096, 64);
        let mut epoch = EpochPersist::new(16);
        for i in 0..8u64 {
            env.store_u64(a.add_cachelines(i), i + 1);
            epoch.write(&mut env, a.add_cachelines(i), 8);
        }
        epoch.close(&mut env);
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        for i in 0..8u64 {
            assert_eq!(m.peek_u64(a.add_cachelines(i)), i + 1);
        }
    }

    #[test]
    fn modes_are_noops_on_host_env() {
        let mut env = HostEnv::new();
        let a = env.alloc(64, 64);
        env.store_u64(a, 5);
        PersistMode::Strict.after_write(&mut env, a, 8);
        PersistMode::Relaxed.end_batch(&mut env);
        assert_eq!(env.load_u64(a), 5);
    }
}
