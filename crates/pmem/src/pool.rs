//! A crash-recoverable persistent-memory pool.
//!
//! Minimal `libpmemobj`-flavoured region management: a header with a magic
//! number, a persistently maintained allocation cursor, and one named root
//! pointer from which recovery code reaches every live object.
//!
//! Allocation is a persisted bump pointer: the cursor is flushed before an
//! allocation is handed out, so a crash can at worst leak the allocation,
//! never double-allocate it.

use simbase::Addr;

use crate::env::PmemEnv;

/// ASCII "PMPOOL!!".
const MAGIC: u64 = 0x504D_504F_4F4C_2121;

const OFF_MAGIC: u64 = 0;
const OFF_CAPACITY: u64 = 8;
const OFF_CURSOR: u64 = 16;
const OFF_ROOT: u64 = 24;
/// First allocatable offset (the header owns the first cacheline).
const HEADER_BYTES: u64 = 64;

/// Errors from opening a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The region does not contain a pool header.
    BadMagic,
    /// The header is internally inconsistent.
    Corrupt,
    /// The pool has no room for the requested allocation.
    OutOfSpace,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::BadMagic => write!(f, "region is not a pool (bad magic)"),
            PoolError::Corrupt => write!(f, "pool header is corrupt"),
            PoolError::OutOfSpace => write!(f, "pool is out of space"),
        }
    }
}

impl std::error::Error for PoolError {}

/// A persistent region with a root pointer and a persisted bump allocator.
#[derive(Debug, Clone, Copy)]
pub struct PmPool {
    base: Addr,
    capacity: u64,
}

impl PmPool {
    /// Creates (formats) a new pool of `capacity` bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use pmem::{HostEnv, PmPool, PmemEnv};
    ///
    /// let mut env = HostEnv::new();
    /// let pool = PmPool::create(&mut env, 1 << 16);
    /// let obj = pool.alloc(&mut env, 128, 64).unwrap();
    /// pool.set_root(&mut env, obj);
    ///
    /// // After a restart, the root pointer finds the object again.
    /// let reopened = PmPool::open(&mut env, pool.base()).unwrap();
    /// assert_eq!(reopened.root(&mut env), Some(obj));
    /// ```
    pub fn create<E: PmemEnv>(env: &mut E, capacity: u64) -> Self {
        let base = env.alloc(capacity, 4096);
        env.store_u64(base.add(OFF_MAGIC), MAGIC);
        env.store_u64(base.add(OFF_CAPACITY), capacity);
        env.store_u64(base.add(OFF_CURSOR), HEADER_BYTES);
        env.store_u64(base.add(OFF_ROOT), 0);
        env.persist(base, HEADER_BYTES);
        PmPool { base, capacity }
    }

    /// Opens an existing pool at `base` (after a restart or crash).
    pub fn open<E: PmemEnv>(env: &mut E, base: Addr) -> Result<Self, PoolError> {
        if env.load_u64(base.add(OFF_MAGIC)) != MAGIC {
            return Err(PoolError::BadMagic);
        }
        let capacity = env.load_u64(base.add(OFF_CAPACITY));
        let cursor = env.load_u64(base.add(OFF_CURSOR));
        if cursor < HEADER_BYTES || cursor > capacity {
            return Err(PoolError::Corrupt);
        }
        Ok(PmPool { base, capacity })
    }

    /// Returns the pool's base address.
    pub fn base(&self) -> Addr {
        self.base
    }

    /// Returns the pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Allocates `len` bytes with the given alignment, persisting the
    /// cursor before returning.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc<E: PmemEnv>(&self, env: &mut E, len: u64, align: u64) -> Result<Addr, PoolError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let cursor = env.load_u64(self.base.add(OFF_CURSOR));
        let abs = self.base.0 + cursor;
        let aligned = (abs + align - 1) & !(align - 1);
        let new_cursor = aligned - self.base.0 + len;
        if new_cursor > self.capacity {
            return Err(PoolError::OutOfSpace);
        }
        env.store_u64(self.base.add(OFF_CURSOR), new_cursor);
        env.persist(self.base.add(OFF_CURSOR), 8);
        Ok(Addr(aligned))
    }

    /// Returns the bytes still available.
    pub fn remaining<E: PmemEnv>(&self, env: &mut E) -> u64 {
        let cursor = env.load_u64(self.base.add(OFF_CURSOR));
        self.capacity - cursor
    }

    /// Durably sets the root pointer.
    pub fn set_root<E: PmemEnv>(&self, env: &mut E, root: Addr) {
        env.store_u64(self.base.add(OFF_ROOT), root.0);
        env.persist(self.base.add(OFF_ROOT), 8);
    }

    /// Reads the root pointer, if one was set.
    pub fn root<E: PmemEnv>(&self, env: &mut E) -> Option<Addr> {
        let r = env.load_u64(self.base.add(OFF_ROOT));
        (r != 0).then_some(Addr(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{HostEnv, SimEnv};
    use cpucache::PrefetchConfig;
    use optane_core::{CrashPolicy, Machine, MachineConfig};

    #[test]
    fn create_alloc_and_root() {
        let mut env = HostEnv::new();
        let pool = PmPool::create(&mut env, 1 << 20);
        let a = pool.alloc(&mut env, 100, 64).unwrap();
        let b = pool.alloc(&mut env, 100, 64).unwrap();
        assert!(b.0 >= a.0 + 100);
        assert_eq!(a.0 % 64, 0);
        pool.set_root(&mut env, a);
        assert_eq!(pool.root(&mut env), Some(a));
    }

    #[test]
    fn open_round_trips() {
        let mut env = HostEnv::new();
        let pool = PmPool::create(&mut env, 1 << 16);
        let a = pool.alloc(&mut env, 64, 64).unwrap();
        pool.set_root(&mut env, a);
        let reopened = PmPool::open(&mut env, pool.base()).unwrap();
        assert_eq!(reopened.capacity(), 1 << 16);
        assert_eq!(reopened.root(&mut env), Some(a));
    }

    #[test]
    fn open_rejects_garbage() {
        let mut env = HostEnv::new();
        let not_a_pool = env.alloc(4096, 4096);
        assert_eq!(
            PmPool::open(&mut env, not_a_pool).unwrap_err(),
            PoolError::BadMagic
        );
    }

    #[test]
    fn out_of_space_is_reported() {
        let mut env = HostEnv::new();
        let pool = PmPool::create(&mut env, 256);
        assert!(pool.alloc(&mut env, 128, 64).is_ok());
        assert_eq!(pool.alloc(&mut env, 128, 64), Err(PoolError::OutOfSpace));
    }

    #[test]
    fn allocator_state_survives_crash() {
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
        let t = m.spawn(0);
        let mut env = SimEnv::new(&mut m, t);
        let pool = PmPool::create(&mut env, 1 << 20);
        let a = pool.alloc(&mut env, 4096, 256).unwrap();
        pool.set_root(&mut env, a);
        let base = pool.base();
        drop(env);
        m.power_fail(CrashPolicy::LoseUnflushed);
        let mut env = SimEnv::new(&mut m, t);
        let pool = PmPool::open(&mut env, base).unwrap();
        assert_eq!(pool.root(&mut env), Some(a));
        // A post-crash allocation must not overlap the pre-crash one.
        let b = pool.alloc(&mut env, 4096, 256).unwrap();
        assert!(b.0 >= a.0 + 4096);
    }

    #[test]
    fn remaining_decreases() {
        let mut env = HostEnv::new();
        let pool = PmPool::create(&mut env, 1 << 16);
        let before = pool.remaining(&mut env);
        pool.alloc(&mut env, 1000, 8).unwrap();
        let after = pool.remaining(&mut env);
        assert!(before - after >= 1000);
    }
}
