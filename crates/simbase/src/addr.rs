//! Physical addresses and access-granularity geometry.
//!
//! The central architectural mismatch studied by the paper is between the
//! 64-byte cacheline granularity the CPU uses and the 256-byte XPLine
//! granularity of the 3D-XPoint media. All address arithmetic in the
//! simulator goes through this module so the two granularities never get
//! confused.

/// Size of a CPU cacheline in bytes.
pub const CACHELINE_BYTES: u64 = 64;

/// Size of a 3D-XPoint media access unit ("XPLine") in bytes.
pub const XPLINE_BYTES: u64 = 256;

/// Number of cachelines contained in one XPLine.
pub const CACHELINES_PER_XPLINE: u64 = XPLINE_BYTES / CACHELINE_BYTES;

/// A physical byte address in the simulated machine.
///
/// Addresses are plain 64-bit byte offsets into the simulated physical
/// address space. The type is `Copy` and ordered so it can be used as a map
/// key throughout the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the address of the cacheline containing `self`.
    #[inline]
    pub fn cacheline(self) -> Addr {
        Addr(self.0 & !(CACHELINE_BYTES - 1))
    }

    /// Returns the address of the XPLine containing `self`.
    #[inline]
    pub fn xpline(self) -> Addr {
        Addr(self.0 & !(XPLINE_BYTES - 1))
    }

    /// Returns the index (0..=3) of this address's cacheline within its
    /// XPLine.
    #[inline]
    pub fn cacheline_in_xpline(self) -> usize {
        ((self.0 % XPLINE_BYTES) / CACHELINE_BYTES) as usize
    }

    /// Returns the byte offset of this address within its cacheline.
    #[inline]
    pub fn offset_in_cacheline(self) -> usize {
        (self.0 % CACHELINE_BYTES) as usize
    }

    /// Returns `true` if the address is aligned to a cacheline boundary.
    #[inline]
    pub fn is_cacheline_aligned(self) -> bool {
        self.0.is_multiple_of(CACHELINE_BYTES)
    }

    /// Returns `true` if the address is aligned to an XPLine boundary.
    #[inline]
    pub fn is_xpline_aligned(self) -> bool {
        self.0.is_multiple_of(XPLINE_BYTES)
    }

    /// Returns the address advanced by `bytes`.
    // The name deliberately mirrors pointer arithmetic; this is not an
    // `std::ops::Add` impl because mixing `Addr + Addr` must not compile.
    #[expect(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }

    /// Returns the cacheline-sized address `n` cachelines after `self`.
    #[inline]
    pub fn add_cachelines(self, n: u64) -> Addr {
        Addr(self.0 + n * CACHELINE_BYTES)
    }

    /// Returns the address `n` XPLines after `self`.
    #[inline]
    pub fn add_xplines(self, n: u64) -> Addr {
        Addr(self.0 + n * XPLINE_BYTES)
    }
}

impl core::fmt::Debug for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl core::fmt::Display for Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

/// Iterates over the cacheline-aligned addresses covering `[start, start + len)`.
pub fn cachelines_covering(start: Addr, len: u64) -> impl Iterator<Item = Addr> {
    let first = start.cacheline().0;
    let last = if len == 0 {
        first
    } else {
        Addr(start.0 + len - 1).cacheline().0
    };
    (first..=last)
        .step_by(CACHELINE_BYTES as usize)
        .map(Addr)
        .take(if len == 0 { 0 } else { usize::MAX })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cacheline_rounding() {
        assert_eq!(Addr(0).cacheline(), Addr(0));
        assert_eq!(Addr(63).cacheline(), Addr(0));
        assert_eq!(Addr(64).cacheline(), Addr(64));
        assert_eq!(Addr(191).cacheline(), Addr(128));
    }

    #[test]
    fn xpline_rounding() {
        assert_eq!(Addr(0).xpline(), Addr(0));
        assert_eq!(Addr(255).xpline(), Addr(0));
        assert_eq!(Addr(256).xpline(), Addr(256));
        assert_eq!(Addr(1023).xpline(), Addr(768));
    }

    #[test]
    fn cacheline_index_within_xpline() {
        assert_eq!(Addr(0).cacheline_in_xpline(), 0);
        assert_eq!(Addr(64).cacheline_in_xpline(), 1);
        assert_eq!(Addr(128).cacheline_in_xpline(), 2);
        assert_eq!(Addr(192).cacheline_in_xpline(), 3);
        assert_eq!(Addr(256).cacheline_in_xpline(), 0);
        assert_eq!(Addr(300).cacheline_in_xpline(), 0);
        assert_eq!(Addr(321).cacheline_in_xpline(), 1);
    }

    #[test]
    fn alignment_predicates() {
        assert!(Addr(0).is_xpline_aligned());
        assert!(Addr(512).is_xpline_aligned());
        assert!(!Addr(64).is_xpline_aligned());
        assert!(Addr(64).is_cacheline_aligned());
        assert!(!Addr(65).is_cacheline_aligned());
    }

    #[test]
    fn geometry_constants_are_consistent() {
        assert_eq!(CACHELINES_PER_XPLINE, 4);
        assert_eq!(CACHELINE_BYTES * CACHELINES_PER_XPLINE, XPLINE_BYTES);
    }

    #[test]
    fn covering_iterator_spans_unaligned_ranges() {
        let lines: Vec<Addr> = cachelines_covering(Addr(60), 10).collect();
        assert_eq!(lines, vec![Addr(0), Addr(64)]);
        let lines: Vec<Addr> = cachelines_covering(Addr(0), 0).collect();
        assert!(lines.is_empty());
        let lines: Vec<Addr> = cachelines_covering(Addr(128), 64).collect();
        assert_eq!(lines, vec![Addr(128)]);
    }

    #[test]
    fn add_helpers() {
        assert_eq!(Addr(0).add_cachelines(3), Addr(192));
        assert_eq!(Addr(64).add_xplines(2), Addr(576));
        assert_eq!(Addr(5).add(7), Addr(12));
    }
}
