//! Simulated time.
//!
//! All latencies and timestamps in the simulator are expressed in CPU
//! cycles. `Cycles` is a plain `u64` alias rather than a newtype: timing
//! arithmetic is pervasive and the simulator never mixes cycles with any
//! other integer quantity at the same call site, so the extra wrapping would
//! only add noise.

/// A point in simulated time, or a duration, in CPU cycles.
pub type Cycles = u64;

/// A monotonically advancing per-thread clock.
///
/// Each simulated hardware thread owns one `ThreadClock`. Memory operations
/// compute a latency and [`advance`](ThreadClock::advance) the clock by it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadClock {
    now: Cycles,
}

impl ThreadClock {
    /// Creates a clock starting at cycle 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock starting at `start`.
    pub fn starting_at(start: Cycles) -> Self {
        ThreadClock { now: start }
    }

    /// Returns the current simulated time.
    #[inline]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `delta` cycles and returns the new time.
    #[inline]
    pub fn advance(&mut self, delta: Cycles) -> Cycles {
        self.now += delta;
        self.now
    }

    /// Moves the clock forward to `t` if `t` is later than now.
    ///
    /// Used when a thread blocks on a shared resource that frees up at `t`.
    #[inline]
    pub fn advance_to(&mut self, t: Cycles) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = ThreadClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(10), 10);
        assert_eq!(c.advance(5), 15);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = ThreadClock::starting_at(100);
        c.advance_to(50);
        assert_eq!(c.now(), 100);
        c.advance_to(150);
        assert_eq!(c.now(), 150);
    }
}
