//! Foundation types for the Optane DCPMM memory-hierarchy simulator.
//!
//! This crate provides the small, dependency-free building blocks shared by
//! every layer of the simulator:
//!
//! - [`addr`]: physical addresses and the cacheline / XPLine geometry that
//!   the whole study revolves around (64 B cachelines vs. 256 B 3D-XPoint
//!   media lines),
//! - [`clock`]: simulated time in CPU cycles,
//! - [`rng`]: a deterministic SplitMix64 generator so every experiment is
//!   bit-reproducible,
//! - [`resource`]: server-queue primitives used to model contention on
//!   shared hardware resources (media banks, iMC queues, DRAM channels),
//! - [`stats`]: event and byte counters plus latency aggregation,
//! - [`wire`]: a checked little-endian codec for checkpoint payloads.

#![forbid(unsafe_code)]

pub mod addr;
pub mod clock;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod wire;

pub use addr::{Addr, CACHELINES_PER_XPLINE, CACHELINE_BYTES, XPLINE_BYTES};
pub use clock::Cycles;
pub use resource::{BandwidthGate, QueueStats, Server, ServerPool};
pub use rng::SplitMix64;
pub use stats::{ByteCounter, Counter, HitMiss, LatencyStats};
pub use wire::{WireError, WireReader, WireWriter};
