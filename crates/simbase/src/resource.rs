//! Contention modelling for shared hardware resources.
//!
//! The simulator is not a full discrete-event engine; instead each shared
//! hardware resource (a 3D-XPoint media bank, the iMC write-pending queue
//! drain, a DRAM channel) is modelled as a *server queue*: it remembers when
//! it next becomes free, and a request arriving at time `t` with service
//! time `s` completes at `max(t, free_at) + s`. The difference between the
//! completion time and `t` is the latency the requesting thread observes.
//!
//! This reproduces the first-order contention effects the paper's
//! multi-threaded experiments depend on (write bandwidth saturating at a
//! small thread count, media read concurrency limits) while keeping the
//! simulator simple and deterministic.

use crate::clock::Cycles;

/// A single-server queue.
#[derive(Debug, Clone, Default)]
pub struct Server {
    free_at: Cycles,
    /// Total busy time accumulated, for utilization reporting.
    busy: Cycles,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a request arriving at `now` with the given `service` time.
    ///
    /// Returns the completion time. The server is busy until then.
    pub fn request(&mut self, now: Cycles, service: Cycles) -> Cycles {
        let start = self.free_at.max(now);
        self.free_at = start + service;
        self.busy += service;
        self.free_at
    }

    /// Returns when the server next becomes free.
    pub fn free_at(&self) -> Cycles {
        self.free_at
    }

    /// Returns the accumulated busy time.
    pub fn busy_time(&self) -> Cycles {
        self.busy
    }

    /// Resets the server to idle at time zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A pool of `k` identical servers; requests are dispatched to the server
/// that frees up earliest.
///
/// Used for media banks: an Optane DIMM can service a small number of
/// concurrent media reads.
#[derive(Debug, Clone)]
pub struct ServerPool {
    servers: Vec<Server>,
}

impl ServerPool {
    /// Creates a pool of `k` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "ServerPool needs at least one server");
        ServerPool {
            servers: vec![Server::new(); k],
        }
    }

    /// Submits a request arriving at `now` with the given `service` time to
    /// the earliest-free server and returns the completion time.
    pub fn request(&mut self, now: Cycles, service: Cycles) -> Cycles {
        let server = self
            .servers
            .iter_mut()
            .min_by_key(|s| s.free_at())
            .expect("pool is non-empty");
        server.request(now, service)
    }

    /// Returns the number of servers in the pool.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// Returns `true` if the pool has no servers (never true by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Returns the total busy time across all servers.
    pub fn busy_time(&self) -> Cycles {
        self.servers.iter().map(Server::busy_time).sum()
    }

    /// Resets every server to idle.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
    }
}

/// Occupancy statistics for a queue-like resource.
///
/// The paper reasons about iMC queue pressure (RPQ/WPQ) from `ipmwatch`
/// occupancy counters; this is the simulator's equivalent observation
/// point. `stall_cycles` is the *time-at-full* requesters experienced:
/// the total cycles spent waiting because the queue was at capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub accepts: u64,
    /// Deepest backlog observed right after an acceptance.
    pub max_depth: u64,
    /// Total cycles requesters stalled because the queue was full.
    pub stall_cycles: Cycles,
}

impl QueueStats {
    /// Folds another window of observations into this one.
    ///
    /// Counters add; `max_depth` keeps the deeper of the two (it is a
    /// high-water mark, not a count).
    pub fn merge(&mut self, other: &QueueStats) {
        self.accepts += other.accepts;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.stall_cycles += other.stall_cycles;
    }

    /// Resets all observations to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// A throughput limiter expressed as a fixed per-item service interval.
///
/// Unlike [`Server`], which delays the *requester*, a `BandwidthGate` is
/// used for fire-and-forget traffic (e.g. the asynchronous WPQ drain): the
/// caller learns when the item will have drained but is not itself stalled
/// unless the backlog exceeds `capacity` items.
#[derive(Debug, Clone)]
pub struct BandwidthGate {
    /// Cycles between consecutive item completions at full load.
    interval: Cycles,
    /// Completion time of the most recently accepted item.
    last_completion: Cycles,
    /// Maximum number of in-flight items before acceptance itself stalls.
    capacity: usize,
    /// Completion times of in-flight items (monotonically increasing).
    in_flight: std::collections::VecDeque<Cycles>,
    /// Occupancy observations accumulated across accepts.
    stats: QueueStats,
}

impl BandwidthGate {
    /// Creates a gate draining one item per `interval` cycles, with room for
    /// `capacity` queued items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(interval: Cycles, capacity: usize) -> Self {
        assert!(capacity > 0, "BandwidthGate capacity must be positive");
        BandwidthGate {
            interval,
            last_completion: 0,
            capacity,
            in_flight: std::collections::VecDeque::new(),
            stats: QueueStats::default(),
        }
    }

    /// Accepts an item at time `now`.
    ///
    /// Returns `(accept_time, completion_time)`. `accept_time` is when the
    /// item actually entered the queue: it equals `now` unless the queue was
    /// full, in which case the caller must stall until a slot frees up.
    pub fn accept(&mut self, now: Cycles) -> (Cycles, Cycles) {
        self.retire(now);
        let accept_time = if self.in_flight.len() >= self.capacity {
            // Stall until the oldest in-flight item drains.
            let idx = self.in_flight.len() - self.capacity;
            self.in_flight[idx]
        } else {
            now
        };
        if accept_time > now {
            // The item only enters once the front has drained; retire what
            // completed in the meantime so depth accounting stays exact.
            self.retire(accept_time);
        }
        let completion = (self.last_completion + self.interval).max(accept_time + self.interval);
        self.last_completion = completion;
        self.in_flight.push_back(completion);
        self.stats.accepts += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.in_flight.len() as u64);
        self.stats.stall_cycles += accept_time - now;
        (accept_time, completion)
    }

    /// Drops bookkeeping for items that completed at or before `now`.
    fn retire(&mut self, now: Cycles) {
        while let Some(&front) = self.in_flight.front() {
            if front <= now {
                self.in_flight.pop_front();
            } else {
                break;
            }
        }
    }

    /// Returns the number of items still in flight at time `now`.
    pub fn in_flight_at(&mut self, now: Cycles) -> usize {
        self.retire(now);
        self.in_flight.len()
    }

    /// Returns the per-item drain interval.
    pub fn interval(&self) -> Cycles {
        self.interval
    }

    /// Returns the configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns the accumulated occupancy observations.
    pub fn queue_stats(&self) -> QueueStats {
        self.stats
    }

    /// Clears occupancy observations without disturbing queue contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Empties the queue without touching occupancy observations (a power
    /// failure drops timing state but the cumulative metrics survive in
    /// the observer).
    pub fn clear_queue(&mut self) {
        self.last_completion = 0;
        self.in_flight.clear();
    }

    /// Resets the gate to empty, including occupancy observations.
    pub fn reset(&mut self) {
        self.clear_queue();
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_serves_immediately() {
        let mut s = Server::new();
        assert_eq!(s.request(100, 10), 110);
    }

    #[test]
    fn busy_server_queues() {
        let mut s = Server::new();
        s.request(0, 100);
        // Second request arrives while the first is in service.
        assert_eq!(s.request(10, 100), 200);
        assert_eq!(s.busy_time(), 200);
    }

    #[test]
    fn server_idles_between_requests() {
        let mut s = Server::new();
        s.request(0, 10);
        assert_eq!(s.request(50, 10), 60);
        assert_eq!(s.busy_time(), 20);
    }

    #[test]
    fn pool_allows_parallelism_up_to_width() {
        let mut p = ServerPool::new(2);
        assert_eq!(p.request(0, 100), 100);
        assert_eq!(p.request(0, 100), 100);
        // Third concurrent request has to wait for a server.
        assert_eq!(p.request(0, 100), 200);
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut p = ServerPool::new(2);
        p.request(0, 100); // server A busy until 100
        p.request(0, 10); // server B busy until 10
        assert_eq!(p.request(20, 5), 25); // server B again
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_panics() {
        ServerPool::new(0);
    }

    #[test]
    fn gate_does_not_stall_below_capacity() {
        let mut g = BandwidthGate::new(100, 4);
        let (a0, c0) = g.accept(0);
        assert_eq!((a0, c0), (0, 100));
        let (a1, c1) = g.accept(0);
        assert_eq!(a1, 0);
        assert_eq!(c1, 200);
    }

    #[test]
    fn gate_stalls_when_full() {
        let mut g = BandwidthGate::new(100, 2);
        g.accept(0); // completes 100
        g.accept(0); // completes 200
        let (a, c) = g.accept(0); // queue full: stall until 100
        assert_eq!(a, 100);
        assert_eq!(c, 300);
    }

    #[test]
    fn gate_retires_completed_items() {
        let mut g = BandwidthGate::new(100, 2);
        g.accept(0);
        g.accept(0);
        assert_eq!(g.in_flight_at(150), 1);
        let (a, _) = g.accept(250);
        assert_eq!(a, 250);
    }

    #[test]
    fn gate_tracks_occupancy_and_stall_time() {
        let mut g = BandwidthGate::new(100, 2);
        g.accept(0); // depth 1
        g.accept(0); // depth 2 (full)
        let s = g.queue_stats();
        assert_eq!(s.accepts, 2);
        assert_eq!(s.max_depth, 2);
        assert_eq!(s.stall_cycles, 0, "no stall below capacity");

        g.accept(0); // stalls until 100, when the first item drains
        let s = g.queue_stats();
        assert_eq!(s.accepts, 3);
        assert_eq!(s.max_depth, 2, "the stalled accept retired an item first");
        assert_eq!(s.stall_cycles, 100);

        g.reset_stats();
        assert_eq!(g.queue_stats(), QueueStats::default());
        assert_eq!(g.in_flight_at(150), 2, "reset_stats keeps queue contents");
    }

    #[test]
    fn queue_stats_merge_keeps_high_water_mark() {
        let mut a = QueueStats {
            accepts: 5,
            max_depth: 3,
            stall_cycles: 40,
        };
        a.merge(&QueueStats {
            accepts: 2,
            max_depth: 7,
            stall_cycles: 10,
        });
        assert_eq!(a.accepts, 7);
        assert_eq!(a.max_depth, 7);
        assert_eq!(a.stall_cycles, 50);
    }

    #[test]
    fn gate_throughput_matches_interval() {
        let mut g = BandwidthGate::new(50, 1000);
        let mut last = 0;
        for _ in 0..100 {
            let (_, c) = g.accept(0);
            assert_eq!(c, last + 50);
            last = c;
        }
    }
}
