//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible: the same experiment invocation
//! must regenerate the same figure. We therefore use a tiny self-contained
//! SplitMix64 generator for everything inside the simulation (write-buffer
//! random eviction, workload shuffles, crash injection) instead of an
//! external RNG whose stream could change across versions.

/// SplitMix64 pseudo-random generator (public-domain algorithm by Sebastiano
/// Vigna).
///
/// Fast, tiny state, passes BigCrush when used as a 64-bit stream; more than
/// adequate for eviction choices and workload shuffling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the internal state, for checkpointing. Feeding the value
    /// back through [`SplitMix64::from_state`] resumes the exact stream.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Reconstructs a generator mid-stream from a saved state.
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Returns the next 64-bit value in the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        // Lemire's multiply-shift rejection method for unbiased bounded
        // sampling.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Shuffles `slice` in place with a Fisher-Yates pass.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        // With 64 elements the identity permutation is astronomically
        // unlikely.
        assert_ne!(v, (0..64).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_range_zero_bound_panics() {
        SplitMix64::new(0).gen_range(0);
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SplitMix64::new(99);
        for _ in 0..10 {
            a.next_u64();
        }
        let mut b = SplitMix64::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
