//! Event, byte, and latency statistics.
//!
//! The paper observes the DIMM through two counter taps — bytes moved at the
//! iMC boundary and bytes moved at the 3D-XPoint media boundary — and
//! derives read/write amplification from their ratio. [`ByteCounter`] is
//! that tap; [`LatencyStats`] aggregates per-operation latencies for the
//! latency figures.

use crate::clock::Cycles;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

/// Separate read and write byte counters for one observation point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteCounter {
    /// Bytes read through this observation point.
    pub read: u64,
    /// Bytes written through this observation point.
    pub write: u64,
}

impl ByteCounter {
    /// Creates a zeroed counter pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` bytes read.
    #[inline]
    pub fn add_read(&mut self, n: u64) {
        self.read += n;
    }

    /// Records `n` bytes written.
    #[inline]
    pub fn add_write(&mut self, n: u64) {
        self.write += n;
    }

    /// Returns the counter-wise difference `self - earlier`.
    ///
    /// Used to compute per-experiment deltas from two snapshots.
    pub fn delta(&self, earlier: &ByteCounter) -> ByteCounter {
        ByteCounter {
            read: self.read - earlier.read,
            write: self.write - earlier.write,
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Named hit/miss counters for one cache-like structure.
///
/// Every buffer in the study — CPU cache levels, the on-DIMM read and
/// write buffers, the AIT cache — reports its effectiveness as a hit/miss
/// pair. This struct replaces the bare `(hits, misses)` tuples those layers
/// used to return, so call sites name what they read and simwatch can derive
/// hit-ratio metrics uniformly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Accesses served by the structure.
    pub hits: u64,
    /// Accesses the structure could not serve.
    pub misses: u64,
}

impl HitMiss {
    /// Creates a zeroed pair.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pair from explicit counts.
    pub const fn of(hits: u64, misses: u64) -> Self {
        HitMiss { hits, misses }
    }

    /// Records one hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Returns the total number of recorded accesses.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Returns `hits / (hits + misses)`, or 0 when nothing was recorded.
    pub fn hit_ratio(&self) -> f64 {
        ratio(self.hits, self.total())
    }

    /// Returns the counter-wise difference `self - earlier`.
    pub fn delta(&self, earlier: &HitMiss) -> HitMiss {
        HitMiss {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Adds another pair's counts into this one.
    pub fn merge(&mut self, other: &HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Computes a ratio of two byte counts, returning 0 when the denominator is
/// zero.
///
/// Amplification metrics divide media bytes by iMC bytes; experiments with
/// no traffic of a given kind should report 0 rather than NaN.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Aggregated latency statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencyStats {
    count: u64,
    sum: u128,
    min: Cycles,
    max: Cycles,
}

impl LatencyStats {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: Cycles) {
        if self.count == 0 {
            self.min = latency;
            self.max = latency;
        } else {
            self.min = self.min.min(latency);
            self.max = self.max.max(latency);
        }
        self.count += 1;
        self.sum += latency as u128;
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns the sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Returns the arithmetic mean, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Returns the smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<Cycles> {
        (self.count > 0).then_some(self.min)
    }

    /// Returns the largest sample, or `None` if empty.
    pub fn max(&self) -> Option<Cycles> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn byte_counter_delta() {
        let mut a = ByteCounter::new();
        a.add_read(100);
        a.add_write(50);
        let snapshot = a;
        a.add_read(25);
        let d = a.delta(&snapshot);
        assert_eq!(d.read, 25);
        assert_eq!(d.write, 0);
    }

    #[test]
    fn hit_miss_accumulates_and_derives_ratio() {
        let mut hm = HitMiss::new();
        hm.hit();
        hm.hit();
        hm.hit();
        hm.miss();
        assert_eq!(hm, HitMiss::of(3, 1));
        assert_eq!(hm.total(), 4);
        assert_eq!(hm.hit_ratio(), 0.75);

        let earlier = hm;
        hm.merge(&HitMiss::of(1, 1));
        assert_eq!(hm.delta(&earlier), HitMiss::of(1, 1));

        hm.reset();
        assert_eq!(hm, HitMiss::new());
        assert_eq!(hm.hit_ratio(), 0.0, "empty pair reports 0, not NaN");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(10, 0), 0.0);
        assert_eq!(ratio(256, 64), 4.0);
        assert_eq!(ratio(0, 64), 0.0);
    }

    #[test]
    fn latency_stats_aggregate() {
        let mut s = LatencyStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        for v in [10u64, 20, 30] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 20.0);
        assert_eq!(s.min(), Some(10));
        assert_eq!(s.max(), Some(30));
    }

    #[test]
    fn latency_stats_merge() {
        let mut a = LatencyStats::new();
        a.record(5);
        let mut b = LatencyStats::new();
        b.record(15);
        b.record(25);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(5));
        assert_eq!(a.max(), Some(25));
        assert_eq!(a.mean(), 15.0);

        let empty = LatencyStats::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
        let mut c = LatencyStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn single_sample_min_max() {
        let mut s = LatencyStats::new();
        s.record(42);
        assert_eq!(s.min(), Some(42));
        assert_eq!(s.max(), Some(42));
    }
}
