//! A tiny, versionless binary codec for checkpoint payloads.
//!
//! Machine snapshots and experiment checkpoints must survive a `kill -9`
//! and be re-read by a later process, so they are serialized to disk. The
//! workspace is dependency-free by policy (no serde), and the state being
//! saved is simple — integers, byte blocks, and repeated records — so a
//! little-endian length-prefixed format is all that is needed.
//!
//! [`WireWriter`] appends fields to a growing buffer; [`WireReader`]
//! consumes them in the same order. Readers are *checked*: reading past
//! the end or decoding a malformed length yields [`WireError`] instead of
//! panicking, because checkpoint files can be torn or truncated by the
//! very crashes the harness is built to tolerate.

use std::fmt;

/// A malformed or truncated wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Bytes requested by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeds any plausible payload size.
    ImplausibleLength(u64),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated wire buffer: needed {needed} bytes, {remaining} remain"
                )
            }
            WireError::ImplausibleLength(n) => {
                write!(f, "implausible wire length prefix: {n}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Hard cap on a single length-prefixed field (1 GiB). A prefix beyond
/// this is a torn file, not a real payload.
const MAX_FIELD_BYTES: u64 = 1 << 30;

/// Appends little-endian fields to a byte buffer.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends an `f64` by bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed byte block.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Returns the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Consumes fields from a byte buffer in write order.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let remaining = self.buf.len() - self.pos;
        if n > remaining {
            return Err(WireError::Truncated {
                needed: n,
                remaining,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed byte block.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_u64()?;
        if n > MAX_FIELD_BYTES {
            return Err(WireError::ImplausibleLength(n));
        }
        self.take(n as usize)
    }

    /// Reads a length-prefixed UTF-8 string (lossy on invalid UTF-8).
    pub fn get_string(&mut self) -> Result<String, WireError> {
        Ok(String::from_utf8_lossy(self.get_bytes()?).into_owned())
    }

    /// Returns the number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX);
        w.put_u32(7);
        w.put_u8(3);
        w.put_f64(-0.5);
        w.put_bytes(&[1, 2, 3]);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_u8().unwrap(), 3);
        assert_eq!(r.get_f64().unwrap(), -0.5);
        assert_eq!(r.get_bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(r.get_string().unwrap(), "hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_errors_not_panics() {
        let mut w = WireWriter::new();
        w.put_u64(9);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes[..4]);
        assert_eq!(
            r.get_u64(),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 4
            })
        );
    }

    #[test]
    fn implausible_length_prefix_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(WireError::ImplausibleLength(u64::MAX)));
    }

    #[test]
    fn torn_byte_block_reports_truncation() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xAB; 32]);
        let mut bytes = w.into_bytes();
        bytes.truncate(16); // torn mid-payload
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.get_bytes(), Err(WireError::Truncated { .. })));
    }
}
