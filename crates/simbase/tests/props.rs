//! Property tests for the foundation types.

use proptest::prelude::*;
use simbase::{Addr, BandwidthGate, Server, ServerPool, SplitMix64, CACHELINE_BYTES, XPLINE_BYTES};

proptest! {
    #[test]
    fn addr_rounding_is_idempotent_and_ordered(a in any::<u64>()) {
        let addr = Addr(a);
        prop_assert_eq!(addr.cacheline().cacheline(), addr.cacheline());
        prop_assert_eq!(addr.xpline().xpline(), addr.xpline());
        prop_assert!(addr.xpline().0 <= addr.cacheline().0);
        prop_assert!(addr.cacheline().0 <= addr.0);
        prop_assert!(addr.0 - addr.cacheline().0 < CACHELINE_BYTES);
        prop_assert!(addr.0 - addr.xpline().0 < XPLINE_BYTES);
    }

    #[test]
    fn cacheline_index_is_consistent_with_rounding(a in any::<u64>()) {
        let addr = Addr(a);
        let reconstructed =
            addr.xpline().0 + addr.cacheline_in_xpline() as u64 * CACHELINE_BYTES;
        prop_assert_eq!(reconstructed, addr.cacheline().0);
    }

    #[test]
    fn covering_iterator_covers_exactly(start in 0u64..1_000_000, len in 0u64..2048) {
        let lines: Vec<Addr> = simbase::addr::cachelines_covering(Addr(start), len).collect();
        if len == 0 {
            prop_assert!(lines.is_empty());
        } else {
            // Every byte of the range lies in exactly one returned line.
            for b in [start, start + len / 2, start + len - 1] {
                let cl = Addr(b).cacheline();
                prop_assert_eq!(lines.iter().filter(|&&l| l == cl).count(), 1);
            }
            // Lines are contiguous and aligned.
            for w in lines.windows(2) {
                prop_assert_eq!(w[1].0 - w[0].0, CACHELINE_BYTES);
            }
            prop_assert!(lines[0].0 <= start);
            prop_assert!(lines.last().unwrap().0 + CACHELINE_BYTES >= start + len);
        }
    }

    #[test]
    fn rng_gen_range_is_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in any::<u64>(), mut v in prop::collection::vec(any::<u32>(), 0..100)) {
        let mut expected = v.clone();
        SplitMix64::new(seed).shuffle(&mut v);
        expected.sort_unstable();
        v.sort_unstable();
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn server_completions_are_monotone_and_work_conserving(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..50),
    ) {
        let mut sorted = reqs.clone();
        sorted.sort();
        let mut s = Server::new();
        let mut last_completion = 0;
        let mut total_service = 0;
        for (now, service) in &sorted {
            let done = s.request(*now, *service);
            prop_assert!(done >= now + service, "no time travel");
            prop_assert!(done >= last_completion, "FIFO completions");
            last_completion = done;
            total_service += service;
        }
        prop_assert_eq!(s.busy_time(), total_service);
        // Work conservation: finishing no later than serial-from-zero.
        prop_assert!(last_completion <= sorted.last().unwrap().0 + total_service);
    }

    #[test]
    fn pool_is_never_slower_than_single_server(
        reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..40),
        width in 2usize..6,
    ) {
        let mut sorted = reqs.clone();
        sorted.sort();
        let mut single = Server::new();
        let mut pool = ServerPool::new(width);
        let mut single_last = 0;
        let mut pool_last = 0;
        for (now, service) in &sorted {
            single_last = single.request(*now, *service).max(single_last);
            pool_last = pool.request(*now, *service).max(pool_last);
        }
        prop_assert!(pool_last <= single_last);
    }

    #[test]
    fn gate_never_reorders_and_respects_interval(
        arrivals in prop::collection::vec(0u64..50_000, 1..60),
        interval in 1u64..1000,
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut g = BandwidthGate::new(interval, 8);
        let mut last = 0;
        for now in sorted {
            let (accept, done) = g.accept(now);
            prop_assert!(accept >= now);
            prop_assert!(done >= accept + interval);
            prop_assert!(done >= last + interval, "drain rate bounded");
            last = done;
        }
    }
}
