//! The lint engine: file classification, test-region detection, allow
//! filtering, and the workspace walk.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, AllowDirective, Tok};
use crate::rules::{self, Rule, Violation};

/// The crates whose `src/` holds simulator state or serialization paths.
/// The strict rules (unordered-state, wall-clock, unwrap-in-lib) apply
/// only here; float-accum-unordered and bare-allow apply workspace-wide.
pub const SIM_STATE_CRATES: [&str; 7] = [
    "core",
    "dimm",
    "media",
    "memctl",
    "cache",
    "datastores",
    "cluster",
];

/// How a file is classified for rule selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library source of a sim-state crate: all rules apply.
    SimState,
    /// Any other workspace source: only the workspace-wide rules apply.
    General,
    /// Test/bench/example code: only bare-allow applies (tests may use
    /// HashMaps and unwrap freely — they never run inside a simulation).
    Test,
}

/// Classifies a repo-relative path.
pub fn classify(rel: &str) -> FileClass {
    let p = rel.replace('\\', "/");
    let in_test_tree = p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("tests/")
        || p.starts_with("examples/");
    if in_test_tree {
        return FileClass::Test;
    }
    for c in SIM_STATE_CRATES {
        if p.starts_with(&format!("crates/{c}/src/")) {
            return FileClass::SimState;
        }
    }
    FileClass::General
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` regions.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut skip = vec![false; toks.len()];
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].text == "#"
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
            && toks[i + 4].text == "test"
            && toks[i + 5].text == ")"
            && toks[i + 6].text == "]";
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Skip any further attributes, then expect `mod name {` (or an
        // attributed fn/impl — mark through its matching close brace
        // either way).
        let mut j = i + 7;
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        // Find the opening brace of the annotated item.
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text == ";" {
            i = j.max(i + 1);
            continue;
        }
        // Mark through the matching close brace.
        let mut depth = 0i32;
        let start = i;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let end = j.min(toks.len().saturating_sub(1));
        for s in skip.iter_mut().take(end + 1).skip(start) {
            *s = true;
        }
        i = end + 1;
    }
    skip
}

/// Computes the line range an allow directive covers: its own line plus
/// the statement that starts on the first code line after it (through the
/// statement's `;`, or through the line of its opening `{` for items).
fn allow_ranges(toks: &[Tok], allows: &[AllowDirective]) -> Vec<(AllowDirective, u32, u32)> {
    let mut out = Vec::new();
    for a in allows {
        let mut lo = a.line;
        let mut hi = a.line;
        if let Some(first) = toks.iter().position(|t| t.line > a.line) {
            lo = lo.min(toks[first].line);
            hi = hi.max(toks[first].line);
            let mut depth = 0i32;
            for t in &toks[first..] {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" => {
                        // An item body: the annotation covers up to the
                        // opening brace line only.
                        hi = hi.max(t.line);
                        break;
                    }
                    ";" if depth <= 0 => {
                        hi = hi.max(t.line);
                        break;
                    }
                    _ => {}
                }
                hi = hi.max(t.line);
            }
        }
        out.push((a.clone(), lo, hi));
    }
    out
}

/// Lints one file's source. `rel` is the repo-relative path used both for
/// classification and for reporting.
pub fn lint_source(rel: &str, src: &str) -> Vec<Violation> {
    let class = classify(rel);
    let lexed = lex(src);
    let toks = &lexed.tokens;
    let mut skip = test_regions(toks);
    if class == FileClass::Test {
        skip.iter_mut().for_each(|s| *s = true);
    }

    let mut raw = Vec::new();
    if class == FileClass::SimState {
        rules::unordered_state(toks, &skip, &mut raw, rel);
        rules::wall_clock(toks, &skip, &mut raw, rel);
        rules::unwrap_in_lib(toks, &skip, &mut raw, rel);
    }
    if class != FileClass::Test {
        rules::float_accum_unordered(toks, &skip, &mut raw, rel);
    }

    // Apply allow directives: suppress matching violations inside each
    // directive's covered line range; flag bare or unknown-rule allows.
    let ranges = allow_ranges(toks, &lexed.allows);
    let mut out: Vec<Violation> = raw
        .into_iter()
        .filter(|v| {
            !ranges.iter().any(|(a, lo, hi)| {
                a.has_reason && a.rule == v.rule.name() && (*lo..=*hi).contains(&v.line)
            })
        })
        .collect();
    for a in &lexed.allows {
        if Rule::from_name(&a.rule).is_none() {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: Rule::BareAllow,
                msg: format!("simlint::allow names unknown rule `{}`", a.rule),
            });
        } else if !a.has_reason {
            out.push(Violation {
                file: rel.to_string(),
                line: a.line,
                rule: Rule::BareAllow,
                msg: format!(
                    "simlint::allow({}) without a reason; write \
                     simlint::allow({}, why this is safe)",
                    a.rule, a.rule
                ),
            });
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// A workspace lint run's findings.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All violations, sorted by (file, line).
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the workspace satisfies the contract.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation counts per rule, for the summary line.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut m = BTreeMap::new();
        for v in &self.violations {
            *m.entry(v.rule.name()).or_insert(0) += 1;
        }
        m
    }
}

/// Directories never scanned: vendored stand-ins, build output, results.
const EXCLUDED_DIRS: [&str; 5] = ["third_party", "target", "results", ".git", ".github"];

/// Walks the workspace at `root` and lints every `.rs` file outside the
/// excluded trees.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for rel in files {
        let src = std::fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.violations.extend(lint_source(&rel_str, &src));
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    Ok(report)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(classify("crates/core/src/machine.rs"), FileClass::SimState);
        assert_eq!(classify("crates/media/src/store.rs"), FileClass::SimState);
        assert_eq!(classify("crates/harness/src/lib.rs"), FileClass::General);
        assert_eq!(classify("crates/core/tests/crash.rs"), FileClass::Test);
        assert_eq!(classify("tests/paper_claims.rs"), FileClass::Test);
        assert_eq!(classify("crates/bench/benches/figures.rs"), FileClass::Test);
    }

    #[test]
    fn sim_state_hashmap_is_flagged_test_mod_is_not() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n\
                   fn f() { let _m: HashMap<u8, u8> = HashMap::new(); }\n}\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn general_crate_hashmap_is_fine() {
        let v = lint_source("crates/harness/src/x.rs", "use std::collections::HashMap;");
        assert!(v.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_next_statement() {
        let src = "// simlint::allow(unordered-state, leaf cache, never iterated)\n\
                   struct S { m: HashMap<u64, u8> }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_covers_multiline_statement_after_attribute() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // simlint::allow(unwrap-in-lib, invariant: x is Some here,\n\
                   // a None is a model bug worth aborting on)\n\
                   #[allow(clippy::expect_used)]\n\
                   let v = x\n        .expect(\"present\");\n    v\n}\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn bare_allow_is_itself_a_violation() {
        let src = "// simlint::allow(unordered-state)\nstruct S { m: HashMap<u64, u8> }\n";
        let v = lint_source("crates/core/src/x.rs", src);
        assert_eq!(v.len(), 2, "bare allow does not suppress: {v:?}");
        assert!(v.iter().any(|v| v.rule == Rule::BareAllow));
        assert!(v.iter().any(|v| v.rule == Rule::UnorderedState));
    }

    #[test]
    fn unknown_rule_allow_is_flagged() {
        let v = lint_source(
            "crates/harness/src/x.rs",
            "// simlint::allow(no-such-rule, because)\nfn f() {}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::BareAllow);
    }

    #[test]
    fn wall_clock_and_unwrap_fire_in_sim_crates_only() {
        let src = "fn f() { let t = Instant::now(); t.elapsed().unwrap(); }";
        assert_eq!(lint_source("crates/dimm/src/x.rs", src).len(), 2);
        assert!(lint_source("crates/workloads/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_accum_fires_workspace_wide() {
        let src = "fn f() -> f64 { let mut m = HashMap::new(); m.insert(1, 0.5); \
                   m.values().sum::<f64>() }";
        let v = lint_source("crates/obs/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::FloatAccumUnordered);
    }
}
