//! A small Rust lexer: just enough to lint tokens honestly.
//!
//! The rule engines must never fire on the word `HashMap` inside a string
//! literal or a doc comment, so the lexer strips comments and string/char
//! literals and keeps only identifiers, numbers, and punctuation — each
//! tagged with its 1-based source line. Line comments are additionally
//! scanned for `simlint::allow(rule, reason)` directives, which are the
//! contract's escape hatch (see DESIGN.md, "Determinism contract").

/// One surviving token: an identifier, a number, or a single punctuation
/// character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text (identifiers/numbers whole; punctuation one char).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

/// A `simlint::allow(rule, reason)` directive recovered from comments.
/// Consecutive `//` comment lines are concatenated before parsing, so a
/// directive (and its reason) may span several comment lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Rule name inside the parentheses (up to the first `,` or `)`).
    pub rule: String,
    /// Whether a non-empty reason followed the rule name.
    pub has_reason: bool,
    /// Line of the *last* comment line of the block holding the
    /// directive — the line the annotated code follows.
    pub line: u32,
}

/// Lexer output: the token stream plus recovered allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// Allow directives in source order.
    pub allows: Vec<AllowDirective>,
}

/// Lexes `src`, stripping comments and literals.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut tokens = Vec::new();
    // (last_line, accumulated_text) of the comment block being built.
    let mut comment_block: Option<(u32, String)> = None;
    let mut allows = Vec::new();

    // Closes the pending comment block, extracting any allow directive.
    fn flush_block(block: &mut Option<(u32, String)>, allows: &mut Vec<AllowDirective>) {
        if let Some((last_line, text)) = block.take() {
            if let Some(d) = parse_allow(&text, last_line) {
                allows.push(d);
            }
        }
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if b.get(i + 1) == Some(&'/') => {
                // Line comment. Doc comments (`///`, `//!`) document; only
                // plain `//` comments can carry allow directives — so docs
                // may mention the directive syntax freely.
                let is_doc = matches!(b.get(i + 2), Some(&'/') | Some(&'!'));
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != '\n' {
                    j += 1;
                }
                if is_doc {
                    flush_block(&mut comment_block, &mut allows);
                    i = j;
                    continue;
                }
                let text: String = b[start..j].iter().collect();
                match &mut comment_block {
                    Some((last, acc)) if *last + 1 >= line => {
                        *last = line;
                        acc.push(' ');
                        acc.push_str(&text);
                    }
                    _ => {
                        flush_block(&mut comment_block, &mut allows);
                        comment_block = Some((line, text));
                    }
                }
                i = j;
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Block comment, nested per Rust rules.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&b, i, &mut line);
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                i = skip_raw_or_byte(&b, i, &mut line);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'x'`, `'\n'`).
                let next = b.get(i + 1).copied().unwrap_or(' ');
                let after = b.get(i + 2).copied().unwrap_or(' ');
                if (next.is_alphabetic() || next == '_') && after != '\'' {
                    // Lifetime: consume the tick and fall through to the
                    // identifier below.
                    i += 1;
                } else {
                    i = skip_char_literal(&b, i, &mut line);
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                // Permit `1.5`-style decimals as one token (but not `1..5`).
                if c.is_ascii_digit()
                    && b.get(i) == Some(&'.')
                    && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                }
                flush_block(&mut comment_block, &mut allows);
                tokens.push(Tok {
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                flush_block(&mut comment_block, &mut allows);
                tokens.push(Tok {
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    flush_block(&mut comment_block, &mut allows);
    Lexed { tokens, allows }
}

/// Parses a `simlint::allow(rule, reason)` directive out of comment text.
fn parse_allow(text: &str, line: u32) -> Option<AllowDirective> {
    let marker = "simlint::allow(";
    let at = text.find(marker)?;
    let rest = &text[at + marker.len()..];
    // Rule name runs to the first `,` or `)`; reason is what follows the
    // comma (up to the matching close paren, or end of block if unclosed).
    let end = rest.find([',', ')']).unwrap_or(rest.len());
    let rule = rest[..end].trim().to_string();
    let has_reason = match rest[end..].chars().next() {
        Some(',') => {
            let reason = &rest[end + 1..];
            let reason = reason.rfind(')').map_or(reason, |p| &reason[..p]);
            !reason.trim().is_empty()
        }
        _ => false,
    };
    Some(AllowDirective {
        rule,
        has_reason,
        line,
    })
}

fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r", r#", br", b", b'…: anything that starts a literal rather than
    // an identifier. Only treat as literal when the quote actually comes.
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
    }
    if b.get(j) == Some(&'r') {
        j += 1;
        while b.get(j) == Some(&'#') {
            j += 1;
        }
        return b.get(j) == Some(&'"');
    }
    b.get(j) == Some(&'"') || b.get(j) == Some(&'\'')
}

fn skip_raw_or_byte(b: &[char], mut i: usize, line: &mut u32) -> usize {
    if b[i] == 'b' {
        i += 1;
    }
    if b.get(i) == Some(&'r') {
        i += 1;
        let mut hashes = 0;
        while b.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
        // At the opening quote of a raw string: scan to `"` + hashes.
        i += 1;
        loop {
            match b.get(i) {
                None => return i,
                Some('\n') => *line += 1,
                Some('"') => {
                    let mut k = 0;
                    while k < hashes && b.get(i + 1 + k) == Some(&'#') {
                        k += 1;
                    }
                    if k == hashes {
                        return i + 1 + hashes;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    match b.get(i) {
        Some('"') => skip_string(b, i, line),
        Some('\'') => skip_char_literal(b, i, line),
        _ => i + 1,
    }
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening quote
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_char_literal(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // opening tick
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn strips_comments_and_strings() {
        let toks = texts("let x = \"HashMap\"; // HashMap\n/* HashMap */ y");
        assert_eq!(toks, vec!["let", "x", "=", ";", "y"]);
    }

    #[test]
    fn keeps_identifiers_with_lines() {
        let l = lex("a\nb HashMap");
        assert_eq!(l.tokens[0].line, 1);
        assert_eq!(l.tokens[1].line, 2);
        assert_eq!(l.tokens[2].text, "HashMap");
        assert_eq!(l.tokens[2].line, 2);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = texts("r#\"HashMap \" inside\"# fn f<'a>(x: &'a str) {}");
        assert!(!toks.contains(&"HashMap".to_string()));
        assert!(toks.contains(&"a".to_string()), "lifetime name survives");
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let toks = texts("let c = 'x'; let d = '\\n'; HashMap");
        assert!(toks.contains(&"HashMap".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let toks = texts("/* outer /* inner */ still comment */ token");
        assert_eq!(toks, vec!["token"]);
    }

    #[test]
    fn numbers_including_decimals() {
        let toks = texts("0.5 1..5 0xFF");
        assert_eq!(toks, vec!["0.5", "1", ".", ".", "5", "0xFF"]);
    }

    #[test]
    fn allow_directive_single_line() {
        let l = lex("// simlint::allow(unordered-state, leaf cache only)\nx");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rule, "unordered-state");
        assert!(l.allows[0].has_reason);
        assert_eq!(l.allows[0].line, 1);
    }

    #[test]
    fn allow_directive_without_reason_is_flagged_bare() {
        for src in [
            "// simlint::allow(wall-clock)\nx",
            "// simlint::allow(wall-clock, )\nx",
        ] {
            let l = lex(src);
            assert_eq!(l.allows.len(), 1, "{src}");
            assert!(!l.allows[0].has_reason, "{src}");
        }
    }

    #[test]
    fn doc_comments_never_carry_directives() {
        let l = lex("/// mentions simlint::allow(wall-clock, why)\n//! and simlint::allow(bare-allow, x)\nfn f() {}");
        assert!(l.allows.is_empty());
    }

    #[test]
    fn allow_directive_spanning_comment_lines() {
        let l = lex("// simlint::allow(unwrap-in-lib, the reason\n// continues here)\nlet x = 1;");
        assert_eq!(l.allows.len(), 1);
        assert!(l.allows[0].has_reason);
        assert_eq!(l.allows[0].line, 2, "directive anchors at block end");
    }
}
