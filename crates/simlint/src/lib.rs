//! `simlint`: the repo's determinism-and-persistency contract, enforced.
//!
//! Every guarantee the simulator sells — bit-exact checkpoint/resume,
//! byte-identical metrics across kill/resume, seeded crash-state
//! exploration — rests on the simulation being a pure function of its
//! inputs. Nothing about Rust enforces that: `std::collections::HashMap`
//! iterates in a *per-process* random order (SipHash keys are re-drawn at
//! startup), `Instant`/`SystemTime` read wall clocks, `unwrap()` turns
//! recoverable conditions into aborts. This crate makes the contract
//! mechanical, in two halves:
//!
//! - **Static** ([`engine`], [`rules`], [`lexer`]): a dependency-free
//!   Rust lexer strips comments and strings, then token-level rule
//!   engines walk every workspace crate. Violations in the *sim-state
//!   crates* (`core`, `dimm`, `media`, `memctl`, `cache`, `datastores`)
//!   fail the build. Deliberate exceptions carry a
//!   `// simlint::allow(rule, reason)` annotation; an annotation without
//!   a reason is itself a violation.
//! - **Dynamic** ([`witness`]): the divergence witness runs an experiment
//!   twice in separate processes (fresh SipHash keys, fresh address-space
//!   layout) with the same seed, streaming a running FNV hash of the
//!   TraceSink op stream, sampler rows, checkpoint bytes, and result
//!   tables. On mismatch it bisects to the first divergent op index by
//!   re-running the children with prefix-hash limits, and renders a
//!   two-sided diff of the ops around the divergence point.
//!
//! The static gate proves the *code* cannot depend on unordered state;
//! the witness proves the *runs* actually agree. Each covers the other's
//! blind spots: the lint catches hazards the witness's workloads never
//! reach, the witness catches nondeterminism sources no lexical rule
//! names. See DESIGN.md, "Determinism contract", for the rule list.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod witness;

pub use engine::{lint_source, lint_workspace, FileClass, LintReport};
pub use rules::{Rule, Violation};
pub use witness::{
    fnv1a, fnv1a_bytes, ChildReport, DivergenceOutcome, OpStreamHasher, SharedHasher,
};
