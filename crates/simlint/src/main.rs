//! `simlint` CLI: lints the workspace against the determinism contract.
//!
//! Usage:
//!   simlint [--root PATH]    lint the workspace (default: cwd); exit 1
//!                            on any violation
//!   simlint --list-rules     print every rule with its rationale
//!   simlint --selftest       write a scratch fixture seeded with one
//!                            violation per rule, assert each fires, then
//!                            assert a clean fixture passes

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{lint_workspace, Rule};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut selftest = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("simlint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--selftest" => selftest = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                eprintln!("usage: simlint [--root PATH] [--selftest] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("simlint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if list_rules {
        for r in Rule::all() {
            println!("{:<22} {}", r.name(), r.rationale());
        }
        return ExitCode::SUCCESS;
    }
    if selftest {
        return match run_selftest() {
            Ok(()) => {
                println!(
                    "simlint selftest: all {} rules fire and a clean fixture passes",
                    Rule::all().len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simlint selftest FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    if report.clean() {
        println!(
            "simlint: {} files scanned, determinism contract holds",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        let counts = report.counts();
        let summary: Vec<String> = counts.iter().map(|(r, n)| format!("{n} {r}")).collect();
        println!(
            "simlint: {} violation(s) in {} files scanned ({})",
            report.violations.len(),
            report.files_scanned,
            summary.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// Fixture source seeded with at least one violation per rule; written
/// into a scratch workspace under a sim-state path so every rule applies.
const SEEDED: &str = r#"
use std::collections::HashMap;

// simlint::allow(unordered-state)
pub struct Bad {
    pub m: HashMap<u64, f64>,
}

pub fn sum(b: &Bad) -> f64 {
    let t = Instant::now();
    let _ = t;
    let _home = std::env::var("HOME").unwrap();
    let m = &b.m;
    m.values().sum::<f64>()
}
"#;

const CLEAN: &str = r#"
use std::collections::BTreeMap;

pub struct Good {
    pub m: BTreeMap<u64, f64>,
}

pub fn sum(g: &Good) -> f64 {
    g.m.values().sum::<f64>()
}
"#;

fn run_selftest() -> Result<(), String> {
    let scratch = std::env::temp_dir().join(format!("simlint-selftest-{}", std::process::id()));
    let src_dir = scratch.join("crates/core/src");
    std::fs::create_dir_all(&src_dir).map_err(|e| e.to_string())?;
    let bad = src_dir.join("bad.rs");
    std::fs::write(&bad, SEEDED).map_err(|e| e.to_string())?;

    let report = lint_workspace(&scratch).map_err(|e| e.to_string())?;
    let mut missing = Vec::new();
    for rule in Rule::all() {
        if !report.violations.iter().any(|v| v.rule == rule) {
            missing.push(rule.name());
        }
    }
    if !missing.is_empty() {
        let _ = std::fs::remove_dir_all(&scratch);
        return Err(format!(
            "seeded fixture did not trigger: {} (got: {:?})",
            missing.join(", "),
            report.violations
        ));
    }

    std::fs::write(&bad, CLEAN).map_err(|e| e.to_string())?;
    let report = lint_workspace(&scratch).map_err(|e| e.to_string())?;
    let leftover = report.violations;
    let _ = std::fs::remove_dir_all(&scratch);
    if !leftover.is_empty() {
        return Err(format!("clean fixture still flagged: {leftover:?}"));
    }
    Ok(())
}
