//! The determinism/robustness rules and their token-level detectors.
//!
//! Each rule is deliberately lexical: no type inference, no HIR — just
//! token patterns strong enough to catch the hazard classes that have
//! actually bitten persistent-memory simulators (unordered iteration
//! leaking into crash images, wall-clock reads leaking into timing,
//! panics replacing typed errors). False-positive escapes go through the
//! annotated `// simlint::allow(rule, reason)` hatch, never through rule
//! weakening.

use crate::lexer::Tok;

/// The rules of the determinism contract (DESIGN.md, "Determinism
/// contract").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in sim-state or serialization crates:
    /// iteration order differs across processes (per-process SipHash
    /// keys), so any iteration that reaches a crash image, snapshot, RNG
    /// draw, or report silently diverges between runs.
    UnorderedState,
    /// `SystemTime`/`Instant`/`thread_rng`/`std::env` reads inside sim
    /// logic: simulated time must be a pure function of the instruction
    /// stream, never of the host.
    WallClock,
    /// `.unwrap()`/`.expect()` in non-test library code of the sim
    /// crates: failures must surface as typed errors the harness can
    /// record and retry, not as aborts that take the whole job down.
    UnwrapInLib,
    /// Float accumulation (`sum`/`fold`/`product`) over an unordered
    /// container's iterators: float addition is not associative, so the
    /// result depends on iteration order.
    FloatAccumUnordered,
    /// A `simlint::allow(...)` annotation without a reason string (or
    /// naming an unknown rule). The escape hatch must document itself.
    BareAllow,
}

impl Rule {
    /// The rule's name as written in `simlint::allow(...)` annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedState => "unordered-state",
            Rule::WallClock => "wall-clock",
            Rule::UnwrapInLib => "unwrap-in-lib",
            Rule::FloatAccumUnordered => "float-accum-unordered",
            Rule::BareAllow => "bare-allow",
        }
    }

    /// Parses a rule name (as used in allow annotations).
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unordered-state" => Some(Rule::UnorderedState),
            "wall-clock" => Some(Rule::WallClock),
            "unwrap-in-lib" => Some(Rule::UnwrapInLib),
            "float-accum-unordered" => Some(Rule::FloatAccumUnordered),
            "bare-allow" => Some(Rule::BareAllow),
            _ => None,
        }
    }

    /// All rules, for listings and the self-test.
    pub fn all() -> [Rule; 5] {
        [
            Rule::UnorderedState,
            Rule::WallClock,
            Rule::UnwrapInLib,
            Rule::FloatAccumUnordered,
            Rule::BareAllow,
        ]
    }

    /// One-line rationale, for `--list-rules` and the self-test fixture.
    pub fn rationale(self) -> &'static str {
        match self {
            Rule::UnorderedState => {
                "HashMap/HashSet iteration order is randomized per process; \
                 use BTreeMap/BTreeSet or sort before iterating"
            }
            Rule::WallClock => {
                "sim logic must not read host time, host randomness, or the \
                 environment; seed everything through config"
            }
            Rule::UnwrapInLib => {
                "library code in the sim crates returns typed errors; \
                 unwrap/expect aborts the supervised job instead"
            }
            Rule::FloatAccumUnordered => {
                "float addition is not associative; accumulating over an \
                 unordered iterator makes the result order-dependent"
            }
            Rule::BareAllow => "simlint::allow annotations must carry a reason string",
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable detail.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// Identifiers that name unordered std collections.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Identifiers that read host time or host randomness.
const WALL_CLOCK_IDENTS: [&str; 3] = ["SystemTime", "Instant", "thread_rng"];

/// `std::env` readers (matched as `env :: <reader>`).
const ENV_READERS: [&str; 5] = ["var", "var_os", "vars", "vars_os", "args"];

/// Detects `HashMap`/`HashSet` tokens. `skip` marks test-region tokens.
pub fn unordered_state(toks: &[Tok], skip: &[bool], out: &mut Vec<Violation>, file: &str) {
    for (i, t) in toks.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if UNORDERED_TYPES.contains(&t.text.as_str()) {
            out.push(Violation {
                file: file.to_string(),
                line: t.line,
                rule: Rule::UnorderedState,
                msg: format!(
                    "`{}` in a sim-state crate: iteration order differs across processes",
                    t.text
                ),
            });
        }
    }
}

/// Detects wall-clock/host-entropy reads.
pub fn wall_clock(toks: &[Tok], skip: &[bool], out: &mut Vec<Violation>, file: &str) {
    for (i, t) in toks.iter().enumerate() {
        if skip[i] {
            continue;
        }
        if WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            out.push(Violation {
                file: file.to_string(),
                line: t.line,
                rule: Rule::WallClock,
                msg: format!("`{}` reads host state inside sim logic", t.text),
            });
        } else if t.text == "env"
            && toks.get(i + 1).is_some_and(|t| t.text == ":")
            && toks.get(i + 2).is_some_and(|t| t.text == ":")
            && toks
                .get(i + 3)
                .is_some_and(|t| ENV_READERS.contains(&t.text.as_str()))
        {
            out.push(Violation {
                file: file.to_string(),
                line: t.line,
                rule: Rule::WallClock,
                msg: format!(
                    "`env::{}` reads the host environment inside sim logic",
                    toks[i + 3].text
                ),
            });
        }
    }
}

/// Detects `.unwrap()` / `.expect(` in non-test code.
pub fn unwrap_in_lib(toks: &[Tok], skip: &[bool], out: &mut Vec<Violation>, file: &str) {
    for i in 0..toks.len().saturating_sub(2) {
        if skip[i] {
            continue;
        }
        if toks[i].text == "."
            && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
            && toks[i + 2].text == "("
        {
            out.push(Violation {
                file: file.to_string(),
                line: toks[i + 1].line,
                rule: Rule::UnwrapInLib,
                msg: format!(
                    "`.{}()` in non-test library code; return a typed error instead",
                    toks[i + 1].text
                ),
            });
        }
    }
}

/// Detects float accumulation over an unordered container's iterators.
///
/// First pass collects identifiers declared with a Hash type in this
/// file (`x: HashMap<..>` fields/params and `let x = HashMap::new()`
/// bindings); second pass flags `x.iter()/.values()/.keys()` chains that
/// reach `sum`/`fold`/`product` with float evidence (`f32`/`f64` turbofish
/// or a float literal seed) before the statement ends.
pub fn float_accum_unordered(toks: &[Tok], skip: &[bool], out: &mut Vec<Violation>, file: &str) {
    let mut hash_idents: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        // `name : [std :: collections ::] HashMap`
        if toks[i].text == ":" && i >= 1 && is_ident(&toks[i - 1].text) {
            let mut j = i + 1;
            while j < toks.len()
                && matches!(toks[j].text.as_str(), "std" | "collections" | ":")
                && j - i <= 6
            {
                j += 1;
            }
            if j < toks.len() && UNORDERED_TYPES.contains(&toks[j].text.as_str()) {
                hash_idents.push(&toks[i - 1].text);
            }
        }
        // `let [mut] name ... = ... HashMap :: ...` within the statement.
        if toks[i].text == "let" {
            let mut k = i + 1;
            if toks.get(k).is_some_and(|t| t.text == "mut") {
                k += 1;
            }
            if let Some(name) = toks.get(k).map(|t| t.text.as_str()).filter(|t| is_ident(t)) {
                let mut j = k;
                while j < toks.len() && toks[j].text != ";" && j - k < 24 {
                    if UNORDERED_TYPES.contains(&toks[j].text.as_str()) {
                        hash_idents.push(name);
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    hash_idents.sort_unstable();
    hash_idents.dedup();
    if hash_idents.is_empty() {
        return;
    }
    for i in 0..toks.len().saturating_sub(4) {
        if skip[i] {
            continue;
        }
        if !hash_idents.contains(&toks[i].text.as_str()) {
            continue;
        }
        if toks[i + 1].text != "."
            || !matches!(toks[i + 2].text.as_str(), "iter" | "values" | "keys")
            || toks[i + 3].text != "("
        {
            continue;
        }
        // Scan the rest of the statement for an accumulator + float
        // evidence.
        let mut j = i + 4;
        let mut acc: Option<&str> = None;
        let mut float = false;
        while j < toks.len() && toks[j].text != ";" && j - i < 60 {
            match toks[j].text.as_str() {
                "sum" | "fold" | "product" if acc.is_none() => acc = Some(&toks[j].text),
                "f32" | "f64" => float = true,
                t if t.contains('.') && t.starts_with(|c: char| c.is_ascii_digit()) => float = true,
                _ => {}
            }
            j += 1;
        }
        if let (Some(acc), true) = (acc, float) {
            out.push(Violation {
                file: file.to_string(),
                line: toks[i].line,
                rule: Rule::FloatAccumUnordered,
                msg: format!(
                    "float `{acc}` over `{}.{}()`: result depends on hash iteration order",
                    toks[i].text,
                    toks[i + 2].text
                ),
            });
        }
    }
}

fn is_ident(t: &str) -> bool {
    t.starts_with(|c: char| c.is_alphabetic() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&[Tok], &[bool], &mut Vec<Violation>, &str), src: &str) -> Vec<Violation> {
        let l = lex(src);
        let skip = vec![false; l.tokens.len()];
        let mut out = Vec::new();
        rule(&l.tokens, &skip, &mut out, "f.rs");
        out
    }

    #[test]
    fn unordered_state_fires_on_hashmap() {
        let v = run(
            unordered_state,
            "use std::collections::HashMap;\nstruct S { m: HashMap<u64, u8> }",
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, Rule::UnorderedState);
    }

    #[test]
    fn wall_clock_fires_on_instant_and_env() {
        let v = run(
            wall_clock,
            "let t = Instant::now();\nlet e = std::env::var(\"X\");",
        );
        assert_eq!(v.len(), 2);
        assert!(v[1].msg.contains("env::var"));
    }

    #[test]
    fn unwrap_in_lib_fires_but_not_on_unwrap_or() {
        let v = run(
            unwrap_in_lib,
            "x.unwrap(); y.unwrap_or(0); z.expect(\"msg\");",
        );
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn float_accum_fires_only_with_hash_receiver_and_float() {
        let hit =
            "struct S { m: HashMap<u64, f64> }\nfn f(s: &S) -> f64 { s.m.values().sum::<f64>() }";
        // The field name, not the struct, is what the detector keys on.
        let hit = hit.replace("s.m.values", "m.values");
        assert_eq!(run(float_accum_unordered, &hit).len(), 1);
        let int =
            "struct S { m: HashMap<u64, u64> }\nfn f(m: &S) -> u64 { m.values().sum::<u64>() }";
        assert!(
            run(float_accum_unordered, int).is_empty(),
            "integer sums are order-independent"
        );
        let vec = "fn f(v: Vec<f64>) -> f64 { v.iter().sum::<f64>() }";
        assert!(
            run(float_accum_unordered, vec).is_empty(),
            "ordered containers are fine"
        );
    }

    #[test]
    fn float_accum_fires_on_let_bound_hashmap_fold() {
        let src = "fn f() -> f64 { let mut m = HashMap::new(); m.insert(1u64, 1.5f64); m.iter().fold(0.0, |a, (_, v)| a + v) }";
        assert_eq!(run(float_accum_unordered, src).len(), 1);
    }
}
