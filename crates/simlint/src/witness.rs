//! The dual-run divergence witness: hashing, child reports, bisection.
//!
//! The witness protocol (driven by `repro divergence` in the experiments
//! crate) runs one experiment twice in *separate processes* with the same
//! seed. Each child attaches an [`OpStreamHasher`] as the machines'
//! TraceSink, folds every observed operation into a running FNV-1a hash,
//! folds in checkpoint bytes, sampler rows, and the result table, and
//! prints a [`ChildReport`]. Two fresh processes mean fresh SipHash keys
//! and a fresh address-space layout — exactly the nondeterminism sources
//! the static gate legislates against. If the reports differ, the parent
//! bisects: children are re-run with `--prefix K` (hash only the first K
//! ops) and [`bisect_first_divergence`] binary-searches the smallest
//! prefix whose hashes disagree, ~2·log2(ops) re-runs. A final pair of
//! `--dump A B` runs captures the rendered ops around that index for a
//! two-sided diff.

use std::cell::RefCell;
use std::rc::Rc;

use optane_core::trace::{TraceEvent, TraceSink};

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` word into a running FNV-1a hash, byte by byte
/// (little-endian), so the hash is independent of host word order.
#[inline]
pub fn fnv1a(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Folds a byte slice into a running FNV-1a hash.
pub fn fnv1a_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Canonical word encoding of one trace event. Every field that exists is
/// encoded; enums map to fixed small integers (never `Debug` strings, so
/// renames cannot silently change hashes).
fn canon(ev: &TraceEvent) -> ([u64; 7], usize) {
    use optane_core::trace::{FenceKind, FlushKind};
    use optane_core::MemRegion;
    let region = |r: MemRegion| match r {
        MemRegion::Pm => 0u64,
        MemRegion::Dram => 1u64,
    };
    match *ev {
        TraceEvent::Store {
            tid,
            addr,
            len,
            region: r,
            at,
        } => ([1, tid.0 as u64, addr.0, len, region(r), at, 0], 6),
        TraceEvent::NtStore {
            tid,
            addr,
            len,
            region: r,
            at,
        } => ([2, tid.0 as u64, addr.0, len, region(r), at, 0], 6),
        TraceEvent::Flush {
            tid,
            line,
            kind,
            region: r,
            dirty,
            at,
        } => {
            let k = match kind {
                FlushKind::Clwb => 0u64,
                FlushKind::Clflushopt => 1,
                FlushKind::Clflush => 2,
            };
            (
                [3, tid.0 as u64, line.0, k, region(r), u64::from(dirty), at],
                7,
            )
        }
        TraceEvent::Fence { tid, kind, at } => {
            let k = match kind {
                FenceKind::Sfence => 0u64,
                FenceKind::Mfence => 1,
            };
            ([4, tid.0 as u64, k, at, 0, 0, 0], 4)
        }
        TraceEvent::Load {
            tid,
            addr,
            len,
            region: r,
            at,
        } => ([5, tid.0 as u64, addr.0, len, region(r), at, 0], 6),
        TraceEvent::WriteBack { line, at } => ([6, line.0, at, 0, 0, 0, 0], 3),
        TraceEvent::PowerFail { at } => ([7, at, 0, 0, 0, 0, 0], 2),
        TraceEvent::Cas {
            tid,
            addr,
            region: r,
            success,
            at,
        } => (
            [
                8,
                tid.0 as u64,
                addr.0,
                region(r),
                u64::from(success),
                at,
                0,
            ],
            6,
        ),
        TraceEvent::FetchAdd {
            tid,
            addr,
            region: r,
            delta,
            at,
        } => ([9, tid.0 as u64, addr.0, region(r), delta, at, 0], 6),
    }
}

/// Renders one event for the bisection diff.
fn render(ev: &TraceEvent) -> String {
    match *ev {
        TraceEvent::Store {
            tid,
            addr,
            len,
            region,
            at,
        } => format!(
            "store   tid={} addr={:#x} len={} {:?} at={}",
            tid.0, addr.0, len, region, at
        ),
        TraceEvent::NtStore {
            tid,
            addr,
            len,
            region,
            at,
        } => format!(
            "ntstore tid={} addr={:#x} len={} {:?} at={}",
            tid.0, addr.0, len, region, at
        ),
        TraceEvent::Flush {
            tid,
            line,
            kind,
            region,
            dirty,
            at,
        } => format!(
            "flush   tid={} line={:#x} {:?} {:?} dirty={} at={}",
            tid.0, line.0, kind, region, dirty, at
        ),
        TraceEvent::Fence { tid, kind, at } => {
            format!("fence   tid={} {:?} at={}", tid.0, kind, at)
        }
        TraceEvent::Load {
            tid,
            addr,
            len,
            region,
            at,
        } => format!(
            "load    tid={} addr={:#x} len={} {:?} at={}",
            tid.0, addr.0, len, region, at
        ),
        TraceEvent::WriteBack { line, at } => {
            format!("wb      line={:#x} at={}", line.0, at)
        }
        TraceEvent::PowerFail { at } => format!("powerfail at={}", at),
        TraceEvent::Cas {
            tid,
            addr,
            region,
            success,
            at,
        } => format!(
            "cas     tid={} addr={:#x} {:?} success={} at={}",
            tid.0, addr.0, region, success, at
        ),
        TraceEvent::FetchAdd {
            tid,
            addr,
            region,
            delta,
            at,
        } => format!(
            "xadd    tid={} addr={:#x} {:?} delta={} at={}",
            tid.0, addr.0, region, delta, at
        ),
    }
}

/// A TraceSink that folds every observed op into a running FNV-1a hash.
///
/// Modes (all compose):
/// - `prefix_limit`: hash only the first K ops (op counting continues) —
///   the bisection probe.
/// - `dump_range`: capture rendered ops with index in `[A, B)` — the
///   final diff pass.
/// - `perturb_at`: deliberately flip the encoding of op K — used by tests
///   and `--smoke` to prove the bisector finds a planted divergence.
#[derive(Debug, Default)]
pub struct OpStreamHasher {
    hash: u64,
    ops: u64,
    prefix_limit: Option<u64>,
    dump_range: Option<(u64, u64)>,
    dumped: Vec<(u64, String)>,
    perturb_at: Option<u64>,
}

impl OpStreamHasher {
    /// A hasher over the full op stream.
    pub fn new() -> Self {
        OpStreamHasher {
            hash: FNV_OFFSET,
            ..Default::default()
        }
    }

    /// Hash only the first `k` ops.
    pub fn with_prefix_limit(mut self, k: u64) -> Self {
        self.prefix_limit = Some(k);
        self
    }

    /// Capture rendered ops with index in `[a, b)`.
    pub fn with_dump_range(mut self, a: u64, b: u64) -> Self {
        self.dump_range = Some((a, b));
        self
    }

    /// Deliberately corrupt the hash contribution (and rendering) of op
    /// `k`, planting a divergence the bisector must find.
    pub fn with_perturb_at(mut self, k: u64) -> Self {
        self.perturb_at = Some(k);
        self
    }

    /// The running op-stream hash.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Ops observed so far (counted even past `prefix_limit`).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Ops captured by `dump_range`, as `(index, rendered)` pairs.
    pub fn dumped(&self) -> &[(u64, String)] {
        &self.dumped
    }
}

impl TraceSink for OpStreamHasher {
    fn on_event(&mut self, ev: &TraceEvent) {
        let idx = self.ops;
        self.ops += 1;
        let perturbed = self.perturb_at == Some(idx);
        if self.prefix_limit.is_none_or(|k| idx < k) {
            let (words, n) = canon(ev);
            let mut h = self.hash;
            for &w in &words[..n] {
                h = fnv1a(h, w);
            }
            if perturbed {
                h = fnv1a(h, 0xdead_beef);
            }
            self.hash = h;
        }
        if let Some((a, b)) = self.dump_range {
            if (a..b).contains(&idx) {
                let mut text = render(ev);
                if perturbed {
                    text.push_str("  [planted perturbation]");
                }
                self.dumped.push((idx, text));
            }
        }
    }
}

/// A cloneable handle to one [`OpStreamHasher`], attachable as the
/// TraceSink of several machines at once (pre-crash and post-recovery
/// machines must fold into the same stream).
#[derive(Debug, Clone, Default)]
pub struct SharedHasher(pub Rc<RefCell<OpStreamHasher>>);

impl SharedHasher {
    /// Wraps a configured hasher.
    pub fn new(h: OpStreamHasher) -> Self {
        SharedHasher(Rc::new(RefCell::new(h)))
    }
}

impl TraceSink for SharedHasher {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.0.borrow_mut().on_event(ev);
    }
}

/// What one child process measured, parsed from its stdout.
///
/// Wire format, one `key=value` per line prefixed `divergence-child: `,
/// plus zero or more `divergence-child: dump <idx> <rendered op>` lines.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChildReport {
    /// Total ops observed.
    pub ops: u64,
    /// FNV-1a hash of the (possibly prefix-limited) op stream.
    pub trace_hash: u64,
    /// FNV-1a hash of every machine checkpoint's encoded bytes.
    pub checkpoint_hash: u64,
    /// FNV-1a hash of the sampler's JSONL rows (0 when unsampled).
    pub metrics_hash: u64,
    /// FNV-1a hash of the experiment's result table.
    pub result_hash: u64,
    /// Rendered ops captured by a `--dump` run.
    pub dump: Vec<(u64, String)>,
}

const WIRE_PREFIX: &str = "divergence-child: ";

impl ChildReport {
    /// Serializes for the child's stdout.
    pub fn to_wire(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{WIRE_PREFIX}ops={}\n", self.ops));
        s.push_str(&format!(
            "{WIRE_PREFIX}trace_hash={:#018x}\n",
            self.trace_hash
        ));
        s.push_str(&format!(
            "{WIRE_PREFIX}checkpoint_hash={:#018x}\n",
            self.checkpoint_hash
        ));
        s.push_str(&format!(
            "{WIRE_PREFIX}metrics_hash={:#018x}\n",
            self.metrics_hash
        ));
        s.push_str(&format!(
            "{WIRE_PREFIX}result_hash={:#018x}\n",
            self.result_hash
        ));
        for (idx, text) in &self.dump {
            s.push_str(&format!("{WIRE_PREFIX}dump {idx} {text}\n"));
        }
        s
    }

    /// Parses a child's stdout (ignoring unrelated lines, so the child is
    /// free to log).
    pub fn parse(stdout: &str) -> Result<ChildReport, String> {
        let mut r = ChildReport::default();
        let mut seen = 0u32;
        for line in stdout.lines() {
            let Some(rest) = line.strip_prefix(WIRE_PREFIX) else {
                continue;
            };
            if let Some(dump) = rest.strip_prefix("dump ") {
                let (idx, text) = dump
                    .split_once(' ')
                    .ok_or_else(|| format!("bad dump line: {line}"))?;
                let idx = idx.parse().map_err(|e| format!("bad dump index: {e}"))?;
                r.dump.push((idx, text.to_string()));
                continue;
            }
            let Some((key, value)) = rest.split_once('=') else {
                continue;
            };
            let parse_u64 = |v: &str| -> Result<u64, String> {
                let v = v.trim();
                if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                }
                .map_err(|e| format!("bad value in `{line}`: {e}"))
            };
            match key {
                "ops" => r.ops = parse_u64(value)?,
                "trace_hash" => r.trace_hash = parse_u64(value)?,
                "checkpoint_hash" => r.checkpoint_hash = parse_u64(value)?,
                "metrics_hash" => r.metrics_hash = parse_u64(value)?,
                "result_hash" => r.result_hash = parse_u64(value)?,
                _ => continue,
            }
            seen += 1;
        }
        if seen < 5 {
            return Err(format!(
                "child stdout missing report fields (saw {seen}/5):\n{stdout}"
            ));
        }
        Ok(r)
    }

    /// True when every hash and the op count agree.
    pub fn agrees_with(&self, other: &ChildReport) -> bool {
        self.ops == other.ops
            && self.trace_hash == other.trace_hash
            && self.checkpoint_hash == other.checkpoint_hash
            && self.metrics_hash == other.metrics_hash
            && self.result_hash == other.result_hash
    }
}

/// Outcome of a dual-run comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DivergenceOutcome {
    /// Both processes produced identical streams and state hashes.
    Identical {
        /// Ops in the (agreed) stream.
        ops: u64,
        /// The agreed op-stream hash.
        trace_hash: u64,
    },
    /// The runs diverged; the op stream disagrees starting at this index.
    Diverged {
        /// 0-based index of the first divergent op.
        first_divergent_op: u64,
        /// Two-sided rendered diff around the divergence point.
        diff: String,
    },
    /// Op streams agree but derived state (checkpoints/metrics/results)
    /// does not — divergence downstream of the instruction stream.
    StateOnly {
        /// Which fields disagree, e.g. `["checkpoint_hash"]`.
        fields: Vec<&'static str>,
    },
}

/// Binary-searches the smallest prefix length `k` (1..=ops) whose
/// prefix-hashes disagree; the first divergent op index is `k - 1`.
///
/// `probe(k)` must re-run both children with `--prefix k` and report
/// whether the prefix hashes differ. Invariants assumed: prefix 0 agrees,
/// prefix `ops` differs (the caller established full-stream mismatch).
pub fn bisect_first_divergence(
    ops: u64,
    mut probe: impl FnMut(u64) -> Result<bool, String>,
) -> Result<u64, String> {
    let mut lo = 0u64; // agrees
    let mut hi = ops; // differs
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe(mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi - 1)
}

/// Renders a two-sided diff of the dumped ops around the divergence.
pub fn render_diff(
    first_divergent_op: u64,
    left: &[(u64, String)],
    right: &[(u64, String)],
) -> String {
    let mut s = String::new();
    let idxs: std::collections::BTreeSet<u64> =
        left.iter().chain(right.iter()).map(|(i, _)| *i).collect();
    let find = |side: &[(u64, String)], idx: u64| -> Option<String> {
        side.iter().find(|(i, _)| *i == idx).map(|(_, t)| t.clone())
    };
    for idx in idxs {
        let l = find(left, idx);
        let r = find(right, idx);
        let marker = if idx == first_divergent_op {
            " <-- first divergence"
        } else {
            ""
        };
        match (l, r) {
            (Some(l), Some(r)) if l == r => {
                s.push_str(&format!("    op {idx:>8}  {l}\n"));
            }
            (l, r) => {
                s.push_str(&format!(
                    "  A op {idx:>8}  {}{marker}\n",
                    l.as_deref().unwrap_or("<absent>")
                ));
                s.push_str(&format!(
                    "  B op {idx:>8}  {}\n",
                    r.as_deref().unwrap_or("<absent>")
                ));
            }
        }
    }
    s
}

/// Compares two full-stream reports, without bisection (the caller
/// bisects when `Diverged` detail is needed).
pub fn compare_reports(a: &ChildReport, b: &ChildReport) -> DivergenceOutcome {
    if a.agrees_with(b) {
        return DivergenceOutcome::Identical {
            ops: a.ops,
            trace_hash: a.trace_hash,
        };
    }
    if a.ops == b.ops && a.trace_hash == b.trace_hash {
        let mut fields = Vec::new();
        if a.checkpoint_hash != b.checkpoint_hash {
            fields.push("checkpoint_hash");
        }
        if a.metrics_hash != b.metrics_hash {
            fields.push("metrics_hash");
        }
        if a.result_hash != b.result_hash {
            fields.push("result_hash");
        }
        return DivergenceOutcome::StateOnly { fields };
    }
    DivergenceOutcome::Diverged {
        first_divergent_op: 0,
        diff: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optane_core::trace::FenceKind;
    use optane_core::{MemRegion, ThreadId};
    use simbase::Addr;

    fn ev(i: u64) -> TraceEvent {
        TraceEvent::Store {
            tid: ThreadId(0),
            addr: Addr(0x1000 + i * 64),
            len: 8,
            region: MemRegion::Pm,
            at: i,
        }
    }

    #[test]
    fn same_stream_same_hash() {
        let mut a = OpStreamHasher::new();
        let mut b = OpStreamHasher::new();
        for i in 0..100 {
            a.on_event(&ev(i));
            b.on_event(&ev(i));
        }
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.ops(), 100);
    }

    #[test]
    fn different_stream_different_hash() {
        let mut a = OpStreamHasher::new();
        let mut b = OpStreamHasher::new();
        a.on_event(&ev(1));
        b.on_event(&ev(2));
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn event_kinds_hash_distinctly() {
        let mut a = OpStreamHasher::new();
        let mut b = OpStreamHasher::new();
        a.on_event(&TraceEvent::PowerFail { at: 5 });
        b.on_event(&TraceEvent::Fence {
            tid: ThreadId(0),
            kind: FenceKind::Sfence,
            at: 5,
        });
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn prefix_limit_freezes_hash_but_counts_on() {
        let mut full = OpStreamHasher::new();
        let mut pre = OpStreamHasher::new().with_prefix_limit(3);
        for i in 0..10 {
            full.on_event(&ev(i));
            pre.on_event(&ev(i));
        }
        let mut three = OpStreamHasher::new();
        for i in 0..3 {
            three.on_event(&ev(i));
        }
        assert_eq!(pre.hash(), three.hash());
        assert_eq!(pre.ops(), 10);
        assert_ne!(pre.hash(), full.hash());
    }

    #[test]
    fn perturb_changes_hash_only_at_that_op() {
        let run = |perturb: Option<u64>, limit: u64| {
            let mut h = OpStreamHasher::new().with_prefix_limit(limit);
            if let Some(k) = perturb {
                h = h.with_perturb_at(k);
            }
            for i in 0..10 {
                h.on_event(&ev(i));
            }
            h.hash()
        };
        assert_eq!(
            run(None, 7),
            run(Some(7), 7),
            "perturb past prefix is invisible"
        );
        assert_ne!(run(None, 8), run(Some(7), 8));
    }

    #[test]
    fn bisect_finds_planted_divergence() {
        // Simulate the probe with hashers instead of processes.
        for planted in [0u64, 1, 499, 777, 999] {
            let probe = |k: u64| -> Result<bool, String> {
                let mut a = OpStreamHasher::new().with_prefix_limit(k);
                let mut b = OpStreamHasher::new()
                    .with_prefix_limit(k)
                    .with_perturb_at(planted);
                for i in 0..1000 {
                    a.on_event(&ev(i));
                    b.on_event(&ev(i));
                }
                Ok(a.hash() != b.hash())
            };
            assert_eq!(bisect_first_divergence(1000, probe), Ok(planted));
        }
    }

    #[test]
    fn child_report_roundtrip() {
        let r = ChildReport {
            ops: 12345,
            trace_hash: 0xdead_beef_0123_4567,
            checkpoint_hash: 1,
            metrics_hash: 2,
            result_hash: 3,
            dump: vec![(7, "store tid=0 addr=0x1000 len=8 Pm at=7".to_string())],
        };
        let wire = format!("unrelated log line\n{}more noise\n", r.to_wire());
        assert_eq!(ChildReport::parse(&wire), Ok(r));
    }

    #[test]
    fn compare_reports_classifies() {
        let a = ChildReport {
            ops: 10,
            trace_hash: 1,
            checkpoint_hash: 2,
            metrics_hash: 3,
            result_hash: 4,
            dump: vec![],
        };
        assert!(matches!(
            compare_reports(&a, &a.clone()),
            DivergenceOutcome::Identical { ops: 10, .. }
        ));
        let mut b = a.clone();
        b.checkpoint_hash = 99;
        assert_eq!(
            compare_reports(&a, &b),
            DivergenceOutcome::StateOnly {
                fields: vec!["checkpoint_hash"]
            }
        );
        let mut c = a.clone();
        c.trace_hash = 99;
        assert!(matches!(
            compare_reports(&a, &c),
            DivergenceOutcome::Diverged { .. }
        ));
    }

    #[test]
    fn diff_rendering_marks_divergence() {
        let left = vec![(5, "same".to_string()), (6, "left".to_string())];
        let right = vec![(5, "same".to_string()), (6, "right".to_string())];
        let d = render_diff(6, &left, &right);
        assert!(d.contains("first divergence"), "{d}");
        assert!(d.contains("A op"), "{d}");
        assert!(d.contains("B op"), "{d}");
    }
}
