//! Workload generation: deterministic key streams and access patterns.
//!
//! The paper drives its case studies with YCSB ([4] in the paper): 16
//! million 16-byte key-value inserts, plus read mixes. [`ycsb`] reproduces
//! the key-generation essence (uniform, zipfian, and latest distributions,
//! deterministic under a seed); [`patterns`] generates the microbenchmark
//! access sequences of §3 (strided reads, random 256 B blocks, shuffled
//! pointer-chase orders).

#![forbid(unsafe_code)]

pub mod patterns;
pub mod ycsb;

pub use patterns::{random_block_sequence, ring_order, strided_sequence, AccessOrder};
pub use ycsb::{KeyDistribution, OpKind, OpMix, WorkloadError, YcsbGenerator, YcsbState};
