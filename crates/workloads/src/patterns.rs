//! Microbenchmark access-pattern generators (§3 of the paper).

use simbase::{Addr, SplitMix64, XPLINE_BYTES};

/// Sequential or random ordering of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOrder {
    /// Ascending addresses.
    Sequential,
    /// Deterministically shuffled.
    Random,
}

/// The §3.1 strided-read sequence: pass `pass` reads cacheline `pass` of
/// every XPLine in `[base, base + wss)`.
pub fn strided_sequence(base: Addr, wss: u64, pass: u64) -> impl Iterator<Item = Addr> {
    let xplines = wss / XPLINE_BYTES;
    let cl = pass % simbase::CACHELINES_PER_XPLINE;
    (0..xplines).map(move |x| base.add_xplines(x).add_cachelines(cl))
}

/// The §3.4 random 256 B block sequence: a shuffled visit order over all
/// XPLine-aligned blocks in the region.
pub fn random_block_sequence(base: Addr, wss: u64, seed: u64) -> Vec<Addr> {
    let blocks = (wss / XPLINE_BYTES).max(1);
    let mut order: Vec<u64> = (0..blocks).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    order.into_iter().map(|b| base.add_xplines(b)).collect()
}

/// The §3.6 pointer-chase ring order: a permutation of element indices
/// forming one cycle, either sequential or random.
pub fn ring_order(elements: u64, order: AccessOrder, seed: u64) -> Vec<u64> {
    match order {
        AccessOrder::Sequential => (0..elements).collect(),
        AccessOrder::Random => {
            // Sattolo's algorithm yields a single-cycle permutation, which
            // is what a randomized circular linked list needs (visiting
            // every element exactly once per lap).
            let mut v: Vec<u64> = (0..elements).collect();
            let mut rng = SplitMix64::new(seed);
            let mut i = v.len();
            while i > 1 {
                i -= 1;
                let j = rng.gen_range(i as u64) as usize;
                v.swap(i, j);
            }
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_sequence_hits_each_xpline_once() {
        let addrs: Vec<Addr> = strided_sequence(Addr(0), 1024, 0).collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], Addr(0));
        assert_eq!(addrs[1], Addr(256));
        // Pass 1 reads cacheline 1 of each XPLine.
        let addrs: Vec<Addr> = strided_sequence(Addr(0), 1024, 1).collect();
        assert_eq!(addrs[0], Addr(64));
        // Pass wraps modulo 4.
        let addrs: Vec<Addr> = strided_sequence(Addr(0), 1024, 5).collect();
        assert_eq!(addrs[0], Addr(64));
    }

    #[test]
    fn random_blocks_cover_region_exactly_once() {
        let seq = random_block_sequence(Addr(4096), 16 * 256, 42);
        assert_eq!(seq.len(), 16);
        let mut sorted: Vec<u64> = seq.iter().map(|a| a.0).collect();
        sorted.sort_unstable();
        let expected: Vec<u64> = (0..16u64).map(|i| 4096 + i * 256).collect();
        assert_eq!(sorted, expected);
        // Deterministic.
        assert_eq!(seq, random_block_sequence(Addr(4096), 16 * 256, 42));
        assert_ne!(seq, random_block_sequence(Addr(4096), 16 * 256, 43));
    }

    #[test]
    fn ring_order_random_is_single_cycle() {
        // Following `next[i] = perm[i]`-style chaining from element 0 must
        // visit every element exactly once before returning.
        let n = 64u64;
        let order = ring_order(n, AccessOrder::Random, 7);
        // Build the ring: order[i] is visited at step i; next of order[i]
        // is order[(i + 1) % n].
        let mut next = vec![0u64; n as usize];
        for i in 0..n as usize {
            next[order[i] as usize] = order[(i + 1) % n as usize];
        }
        let mut seen = vec![false; n as usize];
        let mut cur = order[0];
        for _ in 0..n {
            assert!(!seen[cur as usize], "cycle shorter than n");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, order[0], "returns to start after n steps");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ring_order_sequential_is_identity() {
        assert_eq!(
            ring_order(5, AccessOrder::Sequential, 0),
            vec![0, 1, 2, 3, 4]
        );
    }
}
