//! YCSB-style deterministic workload generation.
//!
//! Reproduces the parts of YCSB the paper's case studies rely on: a load
//! phase of unique keys in randomized order and an operation phase drawn
//! from a key distribution and an operation mix. Everything is
//! deterministic under a seed so experiments regenerate identically.

use simbase::SplitMix64;

/// Typed workload-generation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// An existing key was requested before any key was inserted.
    NoKeysInserted,
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::NoKeysInserted => {
                write!(f, "cannot sample an existing key: no keys inserted yet")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Key popularity distribution for the operation phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every loaded key equally likely.
    Uniform,
    /// Zipfian with the classic YCSB constant 0.99 (or a custom theta).
    Zipfian(f64),
    /// Skewed towards recently inserted keys.
    Latest,
}

/// Operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Insert a new key.
    Insert,
    /// Read an existing key.
    Read,
    /// Update an existing key.
    Update,
}

/// An operation mix (fractions must sum to 1).
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
}

impl OpMix {
    /// 100% inserts (the paper's load phase).
    pub fn insert_only() -> Self {
        OpMix {
            insert: 1.0,
            read: 0.0,
            update: 0.0,
        }
    }

    /// YCSB-A: 50% reads, 50% updates.
    pub fn ycsb_a() -> Self {
        OpMix {
            insert: 0.0,
            read: 0.5,
            update: 0.5,
        }
    }

    /// YCSB-B: 95% reads, 5% updates.
    pub fn ycsb_b() -> Self {
        OpMix {
            insert: 0.0,
            read: 0.95,
            update: 0.05,
        }
    }

    /// YCSB-C: read only.
    pub fn ycsb_c() -> Self {
        OpMix {
            insert: 0.0,
            read: 1.0,
            update: 0.0,
        }
    }
}

/// Deterministic YCSB-style generator.
#[derive(Debug)]
pub struct YcsbGenerator {
    rng: SplitMix64,
    /// Sampler with its distribution-specific state embedded, so a
    /// zipfian sampler can never exist without its precomputed constants
    /// (no `Option` to unwrap at sample time).
    sampler: DistSampler,
    /// Number of keys inserted so far (insert keys are `hash(0..n)`).
    inserted: u64,
}

/// A key-popularity sampler with its state.
#[derive(Debug)]
enum DistSampler {
    /// Every loaded key equally likely.
    Uniform,
    /// Zipfian with precomputed constants.
    Zipfian(ZipfState),
    /// Skewed towards recently inserted keys.
    Latest,
}

/// Resumable generator state: everything that evolves as the generator
/// runs. The distribution constants are *not* part of the state — a
/// restored generator is constructed with the same
/// [`YcsbGenerator::new`] arguments and then rewound with
/// [`YcsbGenerator::restore_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YcsbState {
    /// The RNG's internal state word.
    pub rng_state: u64,
    /// Number of keys inserted so far.
    pub inserted: u64,
}

#[derive(Debug)]
struct ZipfState {
    theta: f64,
    n: u64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfState {
            theta,
            n,
            zetan,
            alpha,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum for modest n, scaled approximation beyond.
        let cap = n.min(1_000_000);
        let mut z = 0.0;
        for i in 1..=cap {
            z += 1.0 / (i as f64).powf(theta);
        }
        if n > cap {
            // Integral approximation of the tail.
            let a = cap as f64;
            let b = n as f64;
            z += (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta);
        }
        z
    }

    fn sample(&self, u: f64) -> u64 {
        // Gray et al. quick zipf sampling, as used by YCSB.
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let _ = self.zeta2;
        ((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
    }
}

/// Hashes a key index into a well-spread 64-bit key (fmix64).
fn spread(idx: u64) -> u64 {
    let mut k = idx.wrapping_add(0x9E37_79B9_7F4A_7C15);
    k = (k ^ (k >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    k = (k ^ (k >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    k ^ (k >> 33)
}

impl YcsbGenerator {
    /// Creates a generator.
    pub fn new(seed: u64, distribution: KeyDistribution, expected_keys: u64) -> Self {
        let sampler = match distribution {
            KeyDistribution::Uniform => DistSampler::Uniform,
            KeyDistribution::Zipfian(theta) => {
                DistSampler::Zipfian(ZipfState::new(expected_keys.max(2), theta))
            }
            KeyDistribution::Latest => DistSampler::Latest,
        };
        YcsbGenerator {
            rng: SplitMix64::new(seed),
            sampler,
            inserted: 0,
        }
    }

    /// Captures the generator's evolving state for checkpointing.
    pub fn state(&self) -> YcsbState {
        YcsbState {
            rng_state: self.rng.state(),
            inserted: self.inserted,
        }
    }

    /// Rewinds this generator to a previously captured state. The
    /// generator must have been constructed with the same `new` arguments
    /// as the one that captured the state.
    pub fn restore_state(&mut self, s: &YcsbState) {
        self.rng = SplitMix64::from_state(s.rng_state);
        self.inserted = s.inserted;
    }

    /// Standard zipfian constant used by YCSB.
    pub const ZIPFIAN_THETA: f64 = 0.99;

    /// Returns the key for the next insert (unique, well spread).
    pub fn next_insert_key(&mut self) -> u64 {
        let k = spread(self.inserted);
        self.inserted += 1;
        k
    }

    /// Returns the number of keys inserted so far.
    pub fn inserted(&mut self) -> u64 {
        self.inserted
    }

    /// Samples an existing key according to the distribution, or reports
    /// that no key exists to sample.
    pub fn try_sample_existing_key(&mut self) -> Result<u64, WorkloadError> {
        if self.inserted == 0 {
            return Err(WorkloadError::NoKeysInserted);
        }
        let idx = match &self.sampler {
            DistSampler::Uniform => self.rng.gen_range(self.inserted),
            DistSampler::Zipfian(z) => {
                let u = self.rng.gen_f64();
                z.sample(u).min(self.inserted - 1)
            }
            DistSampler::Latest => {
                // Exponentially biased to recent inserts.
                let u = self.rng.gen_f64();
                let back = ((-u.ln()) * (self.inserted as f64 / 8.0)) as u64;
                self.inserted - 1 - back.min(self.inserted - 1)
            }
        };
        Ok(spread(idx))
    }

    /// Samples an existing key according to the distribution.
    ///
    /// # Panics
    ///
    /// Panics if no key has been inserted yet; use
    /// [`YcsbGenerator::try_sample_existing_key`] to handle that case.
    pub fn sample_existing_key(&mut self) -> u64 {
        match self.try_sample_existing_key() {
            Ok(k) => k,
            Err(e) => panic!("{e}"),
        }
    }

    /// Draws the next operation from `mix`. When no key exists yet the
    /// operation degrades to an insert regardless of the mix.
    pub fn next_op(&mut self, mix: &OpMix) -> (OpKind, u64) {
        let u = self.rng.gen_f64();
        if u < mix.insert || self.inserted == 0 {
            return (OpKind::Insert, self.next_insert_key());
        }
        let read = u < mix.insert + mix.read;
        match self.try_sample_existing_key() {
            Ok(k) if read => (OpKind::Read, k),
            Ok(k) => (OpKind::Update, k),
            // Unreachable given the guard above, but degrade gracefully.
            Err(_) => (OpKind::Insert, self.next_insert_key()),
        }
    }

    /// Generates the full load-phase key sequence for `n` records.
    pub fn load_keys(n: u64) -> impl Iterator<Item = u64> {
        (0..n).map(spread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keys_are_unique() {
        let mut g = YcsbGenerator::new(1, KeyDistribution::Uniform, 1000);
        let keys: Vec<u64> = (0..1000).map(|_| g.next_insert_key()).collect();
        let mut dedup = keys.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn generator_is_deterministic() {
        let run = || {
            let mut g = YcsbGenerator::new(7, KeyDistribution::Zipfian(0.99), 1000);
            for _ in 0..100 {
                g.next_insert_key();
            }
            (0..50).map(|_| g.sample_existing_key()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut g = YcsbGenerator::new(3, KeyDistribution::Zipfian(0.99), 10_000);
        for _ in 0..10_000 {
            g.next_insert_key();
        }
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.sample_existing_key()).or_insert(0u64) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(
            max > 20_000 / 100,
            "hottest key should take >1% of accesses, got {max}"
        );
        assert!(counts.len() > 100, "but many keys are touched");
    }

    #[test]
    fn uniform_covers_key_space() {
        let mut g = YcsbGenerator::new(5, KeyDistribution::Uniform, 64);
        for _ in 0..64 {
            g.next_insert_key();
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            seen.insert(g.sample_existing_key());
        }
        assert!(seen.len() > 55, "uniform sampling reaches most keys");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut g = YcsbGenerator::new(9, KeyDistribution::Latest, 1000);
        for _ in 0..1000 {
            g.next_insert_key();
        }
        let recent: std::collections::HashSet<u64> = (900..1000u64).map(spread).collect();
        let hits = (0..2000)
            .filter(|_| recent.contains(&g.sample_existing_key()))
            .count();
        assert!(
            hits > 600,
            "latest distribution should mostly hit the newest 10%: {hits}"
        );
    }

    #[test]
    fn op_mix_respects_fractions() {
        let mut g = YcsbGenerator::new(11, KeyDistribution::Uniform, 1000);
        g.next_insert_key();
        let mix = OpMix::ycsb_b();
        let mut reads = 0;
        let mut updates = 0;
        for _ in 0..10_000 {
            match g.next_op(&mix).0 {
                OpKind::Read => reads += 1,
                OpKind::Update => updates += 1,
                OpKind::Insert => {}
            }
        }
        assert!(reads > 9000 && updates < 1000, "r={reads} u={updates}");
    }

    #[test]
    fn sampling_before_any_insert_is_a_typed_error() {
        let mut g = YcsbGenerator::new(1, KeyDistribution::Zipfian(0.99), 100);
        assert_eq!(
            g.try_sample_existing_key(),
            Err(WorkloadError::NoKeysInserted)
        );
        g.next_insert_key();
        assert!(g.try_sample_existing_key().is_ok());
    }

    #[test]
    fn state_restore_resumes_the_exact_stream() {
        for dist in [
            KeyDistribution::Uniform,
            KeyDistribution::Zipfian(0.99),
            KeyDistribution::Latest,
        ] {
            let mut g = YcsbGenerator::new(7, dist, 1000);
            for _ in 0..200 {
                g.next_insert_key();
            }
            let mix = OpMix::ycsb_a();
            for _ in 0..57 {
                g.next_op(&mix);
            }
            let state = g.state();
            let tail: Vec<_> = (0..100).map(|_| g.next_op(&mix)).collect();
            // A fresh generator with the same constructor args, rewound to
            // the captured state, continues with the identical stream.
            let mut h = YcsbGenerator::new(7, dist, 1000);
            h.restore_state(&state);
            let resumed: Vec<_> = (0..100).map(|_| h.next_op(&mix)).collect();
            assert_eq!(tail, resumed, "distribution {dist:?}");
        }
    }

    #[test]
    fn load_keys_matches_insert_stream() {
        let mut g = YcsbGenerator::new(0, KeyDistribution::Uniform, 10);
        let a: Vec<u64> = (0..10).map(|_| g.next_insert_key()).collect();
        let b: Vec<u64> = YcsbGenerator::load_keys(10).collect();
        assert_eq!(a, b);
    }
}
