//! The paper's methodology in miniature: probe the on-DIMM buffers with
//! crafted access patterns and infer their parameters from the counters.
//!
//! This is what §3 of the paper does with `ipmwatch` on real DIMMs —
//! here against the simulated machine, where the inferred numbers can be
//! checked against the configuration.
//!
//! ```text
//! cargo run --release --example buffer_explorer [g1|g2]
//! ```

use optane_study::core::{Generation, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::simbase::{SplitMix64, XPLINE_BYTES};

fn machine(gen: Generation) -> Machine {
    Machine::new(MachineConfig::for_generation(
        gen,
        PrefetchConfig::none(),
        1,
    ))
}

/// Probes the read buffer: strided single-cacheline reads per XPLine with
/// immediate invalidation; the WSS where 4-cacheline reads stop costing one
/// media read per round is the capacity.
fn probe_read_buffer(gen: Generation) -> u64 {
    let mut capacity = 0;
    for wss_kb in 1..=40u64 {
        let wss = wss_kb << 10;
        let mut m = machine(gen);
        let t = m.spawn(0);
        let base = m.alloc_pm(wss, 256);
        let xplines = wss / XPLINE_BYTES;
        // Warm round, then measure one full 4-pass round.
        for pass in 0..8u64 {
            if pass == 4 {
                m.reset_metrics();
            }
            for x in 0..xplines {
                let a = base.add_xplines(x).add_cachelines(pass % 4);
                m.load_u64(t, a);
                m.clflushopt(t, a);
            }
        }
        let ra = m.metrics().telemetry.read_amplification();
        if ra < 1.5 {
            capacity = wss;
        }
    }
    capacity
}

/// Probes the write buffer: random partial nt-stores; the WSS where media
/// writes first appear is the effective capacity.
fn probe_write_buffer(gen: Generation) -> u64 {
    let mut capacity = 0;
    for wss_kb in 1..=40u64 {
        let wss = wss_kb << 10;
        let mut m = machine(gen);
        let t = m.spawn(0);
        let base = m.alloc_pm(wss, 256);
        let xplines = wss / XPLINE_BYTES;
        let mut rng = SplitMix64::new(wss);
        for i in 0..4 * xplines {
            m.nt_store(
                t,
                base.add_xplines(rng.gen_range(xplines)),
                &i.to_le_bytes(),
            );
        }
        m.sfence(t);
        if m.metrics().telemetry.media.write == 0 {
            capacity = wss;
        }
    }
    capacity
}

/// Detects the periodic full-line write-back: write full XPLines within a
/// tiny working set and watch for media writes.
fn probe_periodic_writeback(gen: Generation) -> bool {
    let mut m = machine(gen);
    let t = m.spawn(0);
    let base = m.alloc_pm(4 << 10, 256);
    for round in 0..40u64 {
        for x in 0..16u64 {
            for cl in 0..4u64 {
                m.nt_store(
                    t,
                    base.add_xplines(x).add_cachelines(cl),
                    &round.to_le_bytes(),
                );
            }
        }
        m.sfence(t);
    }
    m.metrics().telemetry.media.write > 0
}

/// Measures the read-after-persist gap: reread of a just-persisted line
/// vs. an old one.
fn probe_rap(gen: Generation) -> (u64, u64) {
    let mut m = machine(gen);
    let t = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    let b = m.alloc_pm(64, 64);
    // Old line: persisted long ago.
    m.store_u64(t, b, 1);
    m.clwb(t, b);
    m.mfence(t);
    m.advance(t, 100_000);
    m.clflushopt(t, b); // make sure it is not cached
    m.mfence(t);
    let t0 = m.now(t);
    m.load_u64(t, b);
    let old = m.now(t) - t0;
    // Fresh line: persisted right now.
    m.store_u64(t, a, 1);
    m.clwb(t, a);
    m.mfence(t);
    let t1 = m.now(t);
    m.load_u64(t, a);
    let fresh = m.now(t) - t1;
    (fresh, old)
}

fn main() {
    let gens: Vec<Generation> = match std::env::args().nth(1).as_deref() {
        Some("g1") => vec![Generation::G1],
        Some("g2") => vec![Generation::G2],
        _ => vec![Generation::G1, Generation::G2],
    };
    for gen in gens {
        println!("=== probing {gen} Optane DCPMM ===");
        let rb = probe_read_buffer(gen);
        println!(
            "  read buffer capacity:        ~{} KB (paper: 16 KB G1 / 22 KB G2)",
            rb >> 10
        );
        let wb = probe_write_buffer(gen);
        println!(
            "  write buffer capacity:       ~{} KB (paper: 12 KB G1 / 16 KB G2)",
            wb >> 10
        );
        let periodic = probe_periodic_writeback(gen);
        println!(
            "  periodic full-line writeback: {} (paper: G1 yes, G2 no)",
            if periodic { "detected" } else { "not detected" }
        );
        let (fresh, old) = probe_rap(gen);
        println!(
            "  read-after-persist:          fresh {fresh} vs old {old} cycles ({})",
            if fresh > old * 3 {
                "clwb RAP present"
            } else {
                "no clwb RAP"
            }
        );
        println!();
    }
}
