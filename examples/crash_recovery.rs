//! Crash-recovery drill for the FAST & FAIR B+-tree (§4.2).
//!
//! Inserts sorted records with the out-of-place redo-logging strategy,
//! crashes the machine at an adversarial moment (committed log, torn
//! writeback, random subset of dirty lines surviving), recovers, and
//! verifies both contents and structural invariants. Repeats the drill
//! across several crash seeds.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use optane_study::core::{CrashPolicy, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::pmds::{FastFair, UpdateStrategy};
use optane_study::pmem::SimEnv;
use optane_study::simbase::SplitMix64;

const RECORDS: u64 = 5_000;
const DRILLS: u64 = 5;

fn main() {
    for drill in 0..DRILLS {
        let mut cfg = MachineConfig::g1(PrefetchConfig::all(), 1);
        cfg.crash_seed = 0xD1A_0000 + drill;
        let mut machine = Machine::new(cfg);
        let thread = machine.spawn(0);

        // Build the tree with a shuffled insert order.
        let mut keys: Vec<u64> = (1..=RECORDS).collect();
        SplitMix64::new(drill).shuffle(&mut keys);
        let mut env = SimEnv::new(&mut machine, thread);
        let mut tree = FastFair::create(&mut env, UpdateStrategy::RedoLog);
        // Crash after a random prefix of the inserts.
        let completed = (RECORDS / 2 + drill * 251) % RECORDS;
        for &k in keys.iter().take(completed as usize) {
            tree.insert(&mut env, k, k * 11);
        }
        let meta = tree.root_meta();
        let log_base = tree.log_base();
        drop(env);

        // Random 30% of dirty cachelines happen to evict before the
        // crash — the adversarial middle ground.
        machine.power_fail(CrashPolicy::PersistDirtyFraction(0.3));

        let mut env = SimEnv::new(&mut machine, thread);
        let tree = FastFair::recover(&mut env, meta, UpdateStrategy::RedoLog, log_base);
        assert!(
            tree.check_sorted(&mut env),
            "leaf chain sorted after recovery"
        );
        let mut intact = 0;
        for &k in keys.iter().take(completed as usize) {
            assert_eq!(
                tree.get(&mut env, k),
                Some(k * 11),
                "drill {drill}: completed insert of {k} must survive"
            );
            intact += 1;
        }
        // A range scan must agree with point lookups.
        let scan = tree.range(&mut env, 1, RECORDS);
        assert_eq!(scan.len() as u64, tree.count_pairs(&mut env));
        println!(
            "drill {drill}: crashed after {completed} inserts, recovered {intact} records, \
             leaf chain sorted, range scan consistent"
        );
    }
    println!("\nall {DRILLS} crash drills passed");
}
