//! The §3.5 implication the paper warns about: handing a persistent lock
//! between threads means one thread persists (flush + fence) a cacheline
//! that the next thread immediately reads — a read-after-persist on every
//! handover, made worse across sockets.
//!
//! Two threads alternately take a lock whose owner word lives in PM,
//! persisting the handover each time. Compares same-socket vs.
//! cross-socket handover cost on both generations.
//!
//! ```text
//! cargo run --release --example numa_lock
//! ```

use optane_study::core::{Generation, Machine, MachineConfig, ThreadId};
use optane_study::cpucache::PrefetchConfig;
use optane_study::simbase::Addr;

const HANDOVERS: u64 = 2000;

/// One lock handover: `from` releases (writes + persists the owner word),
/// `to` acquires (reads the just-persisted word, then writes itself in).
fn handover(m: &mut Machine, lock: Addr, from: ThreadId, to: ThreadId, owner: u64) {
    m.store_u64(from, lock, owner);
    m.clwb(from, lock);
    m.sfence(from);
    // The acquiring thread cannot have started before the release; align
    // its clock, then pay the read of the freshly persisted line.
    let release_time = m.now(from);
    m.advance_to(to, release_time);
    let v = m.load_u64(to, lock);
    assert_eq!(v, owner, "lock owner word must be visible");
}

fn measure(gen: Generation, cross_socket: bool) -> f64 {
    let mut m = Machine::new(MachineConfig::for_generation(
        gen,
        PrefetchConfig::none(),
        1,
    ));
    let a = m.spawn(0);
    let b = m.spawn(if cross_socket { 1 } else { 0 });
    let lock = m.alloc_pm(64, 64);
    // Warm up one round trip.
    handover(&mut m, lock, a, b, 1);
    handover(&mut m, lock, b, a, 2);
    let start = m.now(a).max(m.now(b));
    for i in 0..HANDOVERS {
        handover(&mut m, lock, a, b, i * 2 + 3);
        handover(&mut m, lock, b, a, i * 2 + 4);
    }
    let end = m.now(a).max(m.now(b));
    (end - start) as f64 / (2 * HANDOVERS) as f64
}

fn main() {
    println!("persistent lock handover cost (cycles per handover)\n");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "gen", "same-socket", "cross-socket", "penalty"
    );
    for gen in [Generation::G1, Generation::G2] {
        let local = measure(gen, false);
        let remote = measure(gen, true);
        println!(
            "{:>6} {:>14.0} {:>14.0} {:>9.1}x",
            gen.to_string(),
            local,
            remote,
            remote / local
        );
    }
    println!(
        "\nEvery handover reads a cacheline that was just flushed: the G1\n\
         read-after-persist penalty applies each time, and the cross-socket\n\
         case adds the NUMA adders on both the read and the persist (§3.5:\n\
         \"optimizations should be devised to avoid such contentious accesses\n\
         to flushed cachelines\")."
    );
}
