//! A persistent key-value store session on the simulated machine.
//!
//! Builds a CCEH hash table inside a crash-recoverable pool, loads a
//! YCSB-style workload, compares latency with and without the paper's
//! helper-thread prefetching (§4.1), then crashes the machine and recovers
//! the store from its pool root.
//!
//! ```text
//! cargo run --release --example persistent_kv
//! ```

use optane_study::core::{CrashPolicy, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::pmds::Cceh;
use optane_study::pmem::{PmPool, SimEnv};
use optane_study::workloads::YcsbGenerator;

const KEYS: u64 = 30_000;

fn main() {
    let mut machine = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let worker = machine.spawn(0);
    let helper = machine.spawn_sibling(worker);

    // A pool holds the table and names it via the root pointer, so a
    // restart can find it without any volatile state.
    let (pool, mut store) = {
        let mut env = SimEnv::new(&mut machine, worker);
        let pool = PmPool::create(&mut env, 8 << 20);
        let store = Cceh::create(&mut env, 10);
        pool.set_root(&mut env, store.root());
        (pool, store)
    };

    // Load phase, with the helper thread prefetching 8 keys ahead.
    let keys: Vec<u64> = YcsbGenerator::load_keys(KEYS).map(|k| k.max(1)).collect();
    let mut helper_pos = 0usize;
    let t0 = machine.now(worker);
    for (i, &key) in keys.iter().enumerate() {
        let worker_now = machine.now(worker);
        machine.advance_to(helper, worker_now.saturating_sub(1));
        while helper_pos < (i + 8).min(keys.len()) && machine.now(helper) <= worker_now {
            let mut henv = SimEnv::new(&mut machine, helper);
            store.prefetch_for_key(&mut henv, keys[helper_pos]);
            helper_pos += 1;
        }
        helper_pos = helper_pos.max(i + 1);
        let mut env = SimEnv::new(&mut machine, worker);
        store.insert(&mut env, key, key ^ 0xBEEF);
        if i == 0 {
            // First insert is cold; ignore for the average.
        }
    }
    let load_cycles = machine.now(worker) - t0;
    println!(
        "loaded {KEYS} keys in {:.1} Mcycles ({:.0} cycles/insert, helper thread on)",
        load_cycles as f64 / 1e6,
        load_cycles as f64 / KEYS as f64
    );

    // Read a few back.
    let mut env = SimEnv::new(&mut machine, worker);
    for &k in keys.iter().take(3) {
        println!(
            "  get({k:#018x}) = {:#x}",
            store.get(&mut env, k).expect("present")
        );
    }
    drop(env);

    let tel = machine.metrics().telemetry;
    println!(
        "traffic so far: iMC {:.1} MB read / {:.1} MB written, media WA {:.2}",
        tel.imc.read as f64 / 1e6,
        tel.imc.write as f64 / 1e6,
        tel.write_amplification()
    );

    // Power failure. Everything the inserts fenced is durable.
    println!("\n-- power failure --\n");
    machine.power_fail(CrashPolicy::LoseUnflushed);

    let mut env = SimEnv::new(&mut machine, worker);
    let pool = PmPool::open(&mut env, pool.base()).expect("pool header survived");
    let root = pool.root(&mut env).expect("root pointer survived");
    let recovered = Cceh::recover(&mut env, root);
    println!("recovered table from pool root: {} keys", recovered.len());
    let mut ok = 0;
    for &k in &keys {
        if recovered.get(&mut env, k) == Some(k ^ 0xBEEF) {
            ok += 1;
        }
    }
    println!("verified {ok}/{KEYS} key-value pairs intact");
    assert_eq!(ok as u64, KEYS);
}
