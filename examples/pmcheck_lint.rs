//! Lint a persistent-memory workload with `pmcheck`: attach the checker
//! to a machine, run code with a deliberate persist-ordering bug, and
//! read the report.
//!
//! ```text
//! cargo run --release --example pmcheck_lint
//! ```

use optane_study::core::{CrashPolicy, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::pmcheck::{DiagKind, PmCheck};

fn main() {
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
    let t = m.spawn(0);
    let head = m.alloc_pm(64, 64);
    let tail = m.alloc_pm(64, 64);

    // Watch every store/flush/fence the machine executes from here on.
    let check = PmCheck::attach(&mut m);

    // Correct persist: store, clwb, sfence.
    m.store_u64(t, head, 0xC0FFEE);
    m.clwb(t, head);
    m.sfence(t);

    // Bug: the tail update is never flushed. The fence orders nothing
    // for this line; the data sits dirty in the CPU cache.
    m.store_u64(t, tail, 0xBAD);
    m.sfence(t);

    // The plug is pulled; the checker sweeps what was still dirty.
    m.power_fail(CrashPolicy::LoseUnflushed);
    let report = check.finish(&mut m);

    println!("{}", report.to_text());
    assert_eq!(report.count(DiagKind::MissingFlush), 1);
    assert_eq!(report.predicted_lost_lines(), [tail.cacheline().0]);

    // The prediction is real: the machine kept head, lost tail.
    assert_eq!(m.peek_u64(head), 0xC0FFEE);
    assert_eq!(m.peek_u64(tail), 0);
    println!("prediction confirmed: head survived, tail was lost");
}
