//! Quickstart: build a simulated Optane machine, write persistently, crash
//! it, and observe what survives.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use optane_study::core::{CrashPolicy, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;

fn main() {
    // A G1 (100-series) Optane testbed with one DIMM and default
    // prefetchers, like the paper's single-DIMM experiments.
    let mut machine = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let thread = machine.spawn(0);

    // Allocate persistent memory and write three values with different
    // durability treatments.
    let a = machine.alloc_pm(64, 64);
    let b = machine.alloc_pm(64, 64);
    let c = machine.alloc_pm(64, 64);

    machine.store_u64(thread, a, 1); // cached store, flushed below
    machine.clwb(thread, a);
    machine.sfence(thread);

    machine.nt_store(thread, b, &2u64.to_le_bytes()); // nt-store, fenced
    machine.sfence(thread);

    machine.store_u64(thread, c, 3); // cached store, never flushed

    println!(
        "before crash: a={} b={} c={}",
        machine.load_u64(thread, a),
        machine.load_u64(thread, b),
        machine.load_u64(thread, c)
    );

    // Pull the plug. Only data that reached the ADR domain survives.
    machine.power_fail(CrashPolicy::LoseUnflushed);

    println!(
        "after crash:  a={} b={} c={}   (c was never flushed)",
        machine.peek_u64(a),
        machine.peek_u64(b),
        machine.peek_u64(c)
    );

    // The machine also meters itself like the paper's ipmwatch: compare
    // bytes at the iMC boundary with bytes at the 3D-XPoint media. Use a
    // prefetcher-free machine, as the paper's E1 does, so the demanded
    // cachelines are the only iMC traffic.
    let mut machine = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1));
    let thread = machine.spawn(0);
    let region = machine.alloc_pm(16 << 10, 256);
    for i in 0..64u64 {
        machine.load_u64(thread, region.add_xplines(i)); // 1 of 4 cachelines
        machine.clflushopt(thread, region.add_xplines(i));
    }
    let t = machine.metrics().telemetry;
    println!(
        "strided reads: iMC {} B, media {} B -> read amplification {:.1}",
        t.imc.read,
        t.media.read,
        t.read_amplification()
    );
    println!("(reading 1 of 4 cachelines per XPLine costs the whole XPLine: RA = 4)");
}
