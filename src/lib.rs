//! Facade crate for the Optane DCPMM study reproduction.
//!
//! Re-exports the workspace crates under stable paths so examples and
//! downstream users can depend on a single crate. See the README for the
//! architecture overview and `DESIGN.md` for the per-experiment index.

#![forbid(unsafe_code)]

pub use cpucache;
pub use experiments;
pub use faultsim;
pub use imc;
pub use obs;
pub use optane_core as core;
pub use pmcheck;
pub use pmds;
pub use pmem;
pub use simbase;
pub use workloads;
pub use xpdimm;
pub use xpmedia;
