//! Property-based crash-consistency tests.
//!
//! The simulator's power-failure model keeps exactly the ADR-protected
//! bytes and optionally persists a random subset of dirty cachelines
//! (modelling uncontrolled eviction order before the crash). These tests
//! throw randomized workloads and crash points at the persistent
//! structures and verify their recovery contracts:
//!
//! - everything a completed (fenced) operation wrote must be readable
//!   after recovery;
//! - recovery must never surface corrupt state (duplicates, unsorted
//!   leaves, broken ring pointers), regardless of which dirty lines
//!   happened to survive.

use optane_study::core::{CrashPolicy, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::pmds::{Cceh, FastFair, UpdateStrategy};
use optane_study::pmem::{PmPool, PmemEnv, RedoLog, SimEnv, UndoLog};
use proptest::prelude::*;

fn machine(seed: u64) -> Machine {
    let mut cfg = MachineConfig::g1(PrefetchConfig::none(), 1);
    cfg.crash_seed = seed;
    Machine::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn cceh_completed_inserts_survive_any_crash(
        keys in prop::collection::vec(1u64..1_000_000, 20..120),
        survive_fraction in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut m = machine(seed);
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut table = Cceh::create(&mut env, 2);
        let mut expected = std::collections::BTreeMap::new();
        for &k in &keys {
            table.insert(&mut env, k, k.wrapping_mul(3));
            expected.insert(k, k.wrapping_mul(3));
        }
        let root = table.root();
        drop(env);
        m.power_fail(CrashPolicy::PersistDirtyFraction(survive_fraction));
        let mut env = SimEnv::new(&mut m, tid);
        let recovered = Cceh::recover(&mut env, root);
        for (&k, &v) in &expected {
            prop_assert_eq!(recovered.get(&mut env, k), Some(v), "key {}", k);
        }
        prop_assert_eq!(recovered.len(), expected.len() as u64);
    }

    #[test]
    fn fastfair_recovery_is_consistent_for_both_strategies(
        keys in prop::collection::vec(1u64..100_000, 20..100),
        survive_fraction in 0.0f64..1.0,
        in_place in any::<bool>(),
        seed in 0u64..u64::MAX,
    ) {
        let strategy = if in_place {
            UpdateStrategy::InPlace
        } else {
            UpdateStrategy::RedoLog
        };
        let mut m = machine(seed);
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let mut tree = FastFair::create(&mut env, strategy);
        let mut expected = std::collections::BTreeMap::new();
        for &k in &keys {
            tree.insert(&mut env, k, k + 7);
            expected.insert(k, k + 7);
        }
        let meta = tree.root_meta();
        let log_base = tree.log_base();
        drop(env);
        m.power_fail(CrashPolicy::PersistDirtyFraction(survive_fraction));
        let mut env = SimEnv::new(&mut m, tid);
        let tree = FastFair::recover(&mut env, meta, strategy, log_base);
        // All completed inserts are durable...
        for (&k, &v) in &expected {
            prop_assert_eq!(tree.get(&mut env, k), Some(v), "{:?} key {}", strategy, k);
        }
        // ...and the leaf chain is structurally sound.
        prop_assert!(tree.check_sorted(&mut env), "{:?}: sorted leaf chain", strategy);
        prop_assert_eq!(tree.count_pairs(&mut env), expected.len() as u64);
    }

    #[test]
    fn redo_log_batches_are_atomic_under_crash(
        values in prop::collection::vec(1u64..u64::MAX, 2..12),
        commit in any::<bool>(),
        survive_fraction in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut m = machine(seed);
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let targets = env.alloc(64 * values.len() as u64, 64);
        let mut log = RedoLog::create(&mut env, values.len() as u64 + 2);
        let base = log.base();
        log.begin(&mut env);
        for (i, &v) in values.iter().enumerate() {
            log.append(&mut env, targets.add_cachelines(i as u64), &v.to_le_bytes());
        }
        if commit {
            log.commit(&mut env);
        }
        // Crash before the writeback.
        drop(env);
        m.power_fail(CrashPolicy::PersistDirtyFraction(survive_fraction));
        let mut env = SimEnv::new(&mut m, tid);
        let replayed = RedoLog::recover(&mut env, base);
        if commit {
            // All-or-nothing: the committed batch is fully applied.
            prop_assert_eq!(replayed, values.len() as u64);
            for (i, &v) in values.iter().enumerate() {
                prop_assert_eq!(env.load_u64(targets.add_cachelines(i as u64)), v);
            }
        } else {
            prop_assert_eq!(replayed, 0, "uncommitted batch is discarded");
        }
    }

    #[test]
    fn undo_log_rolls_back_torn_transactions(
        initial in prop::collection::vec(1u64..u64::MAX, 2..10),
        updates in prop::collection::vec(1u64..u64::MAX, 2..10),
        survive_fraction in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let n = initial.len().min(updates.len());
        let mut m = machine(seed);
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let targets = env.alloc(64 * n as u64, 64);
        // Durable initial state.
        for (i, &v) in initial.iter().take(n).enumerate() {
            env.store_u64(targets.add_cachelines(i as u64), v);
            env.persist(targets.add_cachelines(i as u64), 8);
        }
        let mut log = UndoLog::create(&mut env, n as u64 + 2);
        let base = log.base();
        log.begin(&mut env);
        // Torn transaction: update (and persist) the targets but never
        // commit.
        for (i, &v) in updates.iter().take(n).enumerate() {
            log.record(&mut env, targets.add_cachelines(i as u64), 8);
            env.store_u64(targets.add_cachelines(i as u64), v);
            env.persist(targets.add_cachelines(i as u64), 8);
        }
        drop(env);
        m.power_fail(CrashPolicy::PersistDirtyFraction(survive_fraction));
        let mut env = SimEnv::new(&mut m, tid);
        UndoLog::recover(&mut env, base);
        for (i, &v) in initial.iter().take(n).enumerate() {
            prop_assert_eq!(
                env.load_u64(targets.add_cachelines(i as u64)),
                v,
                "target {} rolled back",
                i
            );
        }
    }

    #[test]
    fn pool_never_double_allocates_across_crashes(
        sizes in prop::collection::vec(8u64..512, 2..20),
        crash_at in 0usize..20,
        survive_fraction in 0.0f64..1.0,
        seed in 0u64..u64::MAX,
    ) {
        let mut m = machine(seed);
        let tid = m.spawn(0);
        let mut env = SimEnv::new(&mut m, tid);
        let pool = PmPool::create(&mut env, 1 << 20);
        let base = pool.base();
        let mut handed_out: Vec<(u64, u64)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            if i == crash_at.min(sizes.len() - 1) {
                drop(env);
                m.power_fail(CrashPolicy::PersistDirtyFraction(survive_fraction));
                env = SimEnv::new(&mut m, tid);
            }
            let pool = PmPool::open(&mut env, base).expect("pool reopens");
            let a = pool.alloc(&mut env, sz, 8).expect("space remains");
            handed_out.push((a.0, sz));
        }
        // No two live allocations may overlap, even across the crash.
        handed_out.sort();
        for w in handed_out.windows(2) {
            prop_assert!(
                w[0].0 + w[0].1 <= w[1].0,
                "allocations overlap: {:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }
}

/// Deterministic regression: a crash in the middle of a redo writeback is
/// repaired by replay.
#[test]
fn redo_crash_between_commit_and_writeback() {
    let mut m = machine(7);
    let tid = m.spawn(0);
    let mut env = SimEnv::new(&mut m, tid);
    let target = env.alloc(64, 64);
    env.store_u64(target, 1);
    env.persist(target, 8);
    let mut log = RedoLog::create(&mut env, 4);
    let base = log.base();
    log.begin(&mut env);
    log.append(&mut env, target, &2u64.to_le_bytes());
    log.commit(&mut env);
    // Partial writeback: plain store without the flush that
    // apply_and_retire would do.
    env.store_u64(target, 2);
    drop(env);
    m.power_fail(CrashPolicy::LoseUnflushed);
    let mut env = SimEnv::new(&mut m, tid);
    assert_eq!(env.load_u64(target), 1, "writeback was torn away");
    assert_eq!(RedoLog::recover(&mut env, base), 1);
    assert_eq!(env.load_u64(target), 2, "replay completes the batch");
}
