//! Differential tests: the persistent structures against in-memory model
//! structures, and the simulator backend against the plain-host backend.
//!
//! The same operation sequence must produce the same observable contents
//! everywhere — the timing model must never change functional behaviour.

use std::collections::BTreeMap;

use optane_study::core::{Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::pmds::{Cceh, FastFair, UpdateStrategy};
use optane_study::pmem::{HostEnv, PmemEnv, SimEnv};
use proptest::prelude::*;

/// A randomized key-value operation.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Remove(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..500, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (1u64..500).prop_map(Op::Get),
        1 => (1u64..500).prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        ..ProptestConfig::default()
    })]

    #[test]
    fn cceh_matches_btreemap_on_host_and_sim(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut host = HostEnv::new();
        let mut host_table = Cceh::create(&mut host, 1);
        let mut m = Machine::new(MachineConfig::g2(PrefetchConfig::all(), 6));
        let tid = m.spawn(0);
        let mut sim = SimEnv::new(&mut m, tid);
        let mut sim_table = Cceh::create(&mut sim, 1);
        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    model.insert(k, v);
                    host_table.insert(&mut host, k, v);
                    sim_table.insert(&mut sim, k, v);
                }
                Op::Get(k) => {
                    let want = model.get(&k).copied();
                    prop_assert_eq!(host_table.get(&mut host, k), want);
                    prop_assert_eq!(sim_table.get(&mut sim, k), want);
                }
                Op::Remove(k) => {
                    let want = model.remove(&k);
                    prop_assert_eq!(host_table.remove(&mut host, k), want);
                    prop_assert_eq!(sim_table.remove(&mut sim, k), want);
                }
            }
        }
        prop_assert_eq!(host_table.len(), model.len() as u64);
        prop_assert_eq!(sim_table.len(), model.len() as u64);
        prop_assert_eq!(host_table.count_pairs(&mut host), model.len() as u64);
    }

    #[test]
    fn fastfair_matches_btreemap_with_ranges(
        inserts in prop::collection::vec((1u64..2000, any::<u64>()), 1..250),
        range in (1u64..2000, 1u64..2000),
    ) {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut host = HostEnv::new();
        let mut in_place = FastFair::create(&mut host, UpdateStrategy::InPlace);
        let mut redo = FastFair::create(&mut host, UpdateStrategy::RedoLog);
        for &(k, v) in &inserts {
            model.insert(k, v);
            in_place.insert(&mut host, k, v);
            redo.insert(&mut host, k, v);
        }
        let (a, b) = range;
        let (lo, hi) = (a.min(b), a.max(b));
        let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(in_place.range(&mut host, lo, hi), want.clone());
        prop_assert_eq!(redo.range(&mut host, lo, hi), want);
        prop_assert!(in_place.check_sorted(&mut host));
        prop_assert!(redo.check_sorted(&mut host));
        for (&k, &v) in model.iter().step_by(7) {
            prop_assert_eq!(in_place.get(&mut host, k), Some(v));
            prop_assert_eq!(redo.get(&mut host, k), Some(v));
        }
    }

    #[test]
    fn sim_and_host_memory_agree_bytewise(
        writes in prop::collection::vec((0u64..4096, prop::collection::vec(any::<u8>(), 1..80)), 1..60),
    ) {
        let mut host = HostEnv::new();
        let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
        let tid = m.spawn(0);
        let mut sim = SimEnv::new(&mut m, tid);
        let hbase = host.alloc(8192, 256);
        let sbase = sim.alloc(8192, 256);
        for (i, (off, data)) in writes.iter().enumerate() {
            let off = off.min(&(8192 - data.len() as u64)).to_owned();
            match i % 3 {
                0 => {
                    host.store(hbase.add(off), data);
                    sim.store(sbase.add(off), data);
                }
                1 => {
                    host.nt_store(hbase.add(off), data);
                    sim.nt_store(sbase.add(off), data);
                }
                _ => {
                    host.store(hbase.add(off), data);
                    sim.store(sbase.add(off), data);
                    host.persist(hbase.add(off), data.len() as u64);
                    sim.persist(sbase.add(off), data.len() as u64);
                }
            }
        }
        let mut hbuf = vec![0u8; 8192];
        let mut sbuf = vec![0u8; 8192];
        host.load(hbase, &mut hbuf);
        sim.load(sbase, &mut sbuf);
        prop_assert_eq!(hbuf, sbuf);
    }

    #[test]
    fn simulation_is_deterministic(
        keys in prop::collection::vec(1u64..10_000, 10..80),
    ) {
        let run = || {
            let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
            let tid = m.spawn(0);
            let mut env = SimEnv::new(&mut m, tid);
            let mut t = Cceh::create(&mut env, 2);
            for &k in &keys {
                t.insert(&mut env, k, k);
            }
            let now = env.now();
            drop(env);
            (now, m.metrics().telemetry)
        };
        let (t1, tel1) = run();
        let (t2, tel2) = run();
        prop_assert_eq!(t1, t2, "clocks must be bit-identical");
        prop_assert_eq!(tel1, tel2, "telemetry must be bit-identical");
    }
}
