//! Pinned counterexamples found by the faultsim crash-state explorer.
//!
//! Each test replays one explorer-found counterexample at smoke scale
//! with the pinned seed `0xFA57_0001` (the `ExplorerConfig` default,
//! also used by `E11Params::smoke`). The explorer is deterministic —
//! same seed, same plan, same workload ⇒ the same fault schedule and
//! the same crash-state verdicts — so these assert the *exact* numbers
//! the exploration originally produced, one datastore each:
//!
//! * CCEH + elided flushes: the sampled all-lost extreme loses 19
//!   acknowledged keys, yet the hash table recovers cleanly in every
//!   state (loss is detectable, never silent corruption).
//! * FAST-FAIR + redo logging: pmcheck flags the deferred node writes
//!   as missing flushes, but replay makes every one of the explored
//!   crash states loss-free — the lint's documented blind spot, proven
//!   benign by ground truth.
//! * Chase list + elided pad flushes: 3 dropped `clwb`s give a 2^3
//!   exhaustive space where 7 of 8 states read stale lap tokens, but
//!   no state ever tears a token or breaks the ring.
//!
//! If a refactor of the machine, the buffers, or the recovery paths
//! shifts any of these numbers, the fault model changed — rerun
//! `repro faultsim` and re-pin deliberately rather than loosening the
//! assertions.

use optane_study::core::Generation;
use optane_study::experiments::e11_faultsim::{run, E11Params, FaultsimOutcome};
use optane_study::pmcheck::Severity;

/// Error-severity diagnostics in a workload's checker report.
fn errors(o: &FaultsimOutcome) -> usize {
    o.report
        .diagnostics
        .iter()
        .filter(|d| d.severity() == Severity::Error)
        .count()
}

/// Runs the smoke-scale G1 suite and returns the named workload.
fn outcome(name: &str) -> FaultsimOutcome {
    let outcomes = run(&E11Params::smoke(Generation::G1)).expect("smoke params are valid");
    outcomes
        .into_iter()
        .find(|o| o.name == name)
        .unwrap_or_else(|| panic!("workload {name} missing from the suite"))
}

#[test]
fn pinned_cceh_missing_flush_counterexample() {
    let o = outcome("cceh-missing-flush");
    assert!(o.validated, "verdict must agree with ground truth");
    // The lint sees every elided flush...
    assert_eq!(errors(&o), 19, "pinned missing-flush count");
    // ...and the explorer confirms the loss is real: sampling visits 12
    // states (extremes pinned first), 11 of them lose data, and the
    // all-lost extreme loses every key whose flush was dropped.
    assert!(!o.exploration.exhaustive, "uncertain set is sampled");
    assert_eq!(o.exploration.states_explored, 12);
    assert_eq!(o.exploration.lossy_states, 11);
    assert_eq!(o.exploration.max_lost_keys, 19);
    assert_eq!(o.exploration.failing_states, 0, "loss, never corruption");
    let full = o.exploration.full_survivor().expect("extreme pinned");
    assert_eq!(full.lost_keys, 0, "all-survived state loses nothing");
}

#[test]
fn pinned_fastfair_redo_blind_spot_is_benign() {
    let o = outcome("fastfair-redo");
    assert!(o.validated, "verdict must agree with ground truth");
    // pmcheck cannot see that the redo log covers the deferred plain
    // stores; the explorer proves that every crash state replays to a
    // complete, sorted tree.
    assert_eq!(errors(&o), 24, "pinned deferred-store flags");
    assert_eq!(o.exploration.states_explored, 12);
    assert_eq!(o.exploration.lossy_states, 0, "replay recovers every state");
    assert_eq!(o.exploration.failing_states, 0);
}

#[test]
fn pinned_chase_missing_flush_counterexample() {
    let o = outcome("chase-missing-flush");
    assert!(o.validated, "verdict must agree with ground truth");
    // 3 pad lines with elided flushes ⇒ an exhaustive 2^3 space.
    assert_eq!(errors(&o), 3, "pinned elided-flush count");
    assert!(o.exploration.exhaustive);
    assert_eq!(o.exploration.uncertain_lines.len(), 3);
    assert_eq!(o.exploration.states_explored, 8);
    assert_eq!(o.exploration.lossy_states, 7, "only all-survived is clean");
    assert_eq!(o.exploration.max_lost_keys, 3);
    assert_eq!(o.exploration.failing_states, 0, "tokens never tear");
}
