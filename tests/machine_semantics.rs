//! Cross-crate integration tests of machine-level semantics: telemetry
//! invariants, persistence domains, NUMA, and generation differences.

use optane_study::core::{CrashPolicy, Generation, Machine, MachineConfig};
use optane_study::cpucache::PrefetchConfig;
use optane_study::simbase::XPLINE_BYTES;

fn g1() -> Machine {
    Machine::new(MachineConfig::g1(PrefetchConfig::none(), 1))
}

#[test]
fn amplification_is_bounded_by_four() {
    // The §2.4 geometry bound: per traffic class, the media moves at most
    // 4x what the iMC requested. (A *mixed* workload can show RA > 4
    // because read-modify-write evictions read the media without any iMC
    // read — the same artefact real `ipmwatch` numbers have — so each
    // bound is checked on a single-class phase.)
    let mut m = g1();
    let t = m.spawn(0);
    let base = m.alloc_pm(1 << 20, 256);
    // Read-only phase.
    for i in 0..3000u64 {
        let a = base.add(i * 13 * 64 % (1 << 20));
        m.load_u64(t, a);
        m.clflushopt(t, a);
    }
    let reads = m.metrics().telemetry;
    assert!(reads.read_amplification() <= 4.0 + 1e-9);
    assert!(
        reads.read_amplification() >= 1.0 - 1e-9,
        "reads must touch media"
    );
    // Write-only phase.
    m.reset_metrics();
    for i in 0..3000u64 {
        let a = base.add(i * 29 * 64 % (1 << 20));
        m.nt_store(t, a, &[1u8; 8]);
        if i % 7 == 0 {
            m.sfence(t);
        }
    }
    m.sfence(t);
    let writes = m.metrics().telemetry;
    assert!(writes.write_amplification() <= 4.0 + 1e-9);
    assert!(writes.write_amplification() >= 0.0);
}

#[test]
fn media_traffic_is_xpline_granular() {
    let mut m = g1();
    let t = m.spawn(0);
    let base = m.alloc_pm(1 << 16, 256);
    for i in 0..128u64 {
        m.load_u64(t, base.add_xplines(i));
        m.clflushopt(t, base.add_xplines(i));
    }
    let tel = m.metrics().telemetry;
    assert_eq!(
        tel.media.read % XPLINE_BYTES,
        0,
        "media moves whole XPLines"
    );
    assert_eq!(tel.imc.read % 64, 0, "iMC moves whole cachelines");
}

#[test]
fn write_buffer_absorbs_small_working_set_completely() {
    // The headline §3.2 behaviour as an invariant: a partial-write working
    // set within the G1 write buffer generates zero media writes.
    let mut m = g1();
    let t = m.spawn(0);
    let base = m.alloc_pm(8 << 10, 256);
    for round in 0..50u64 {
        for x in 0..32u64 {
            m.nt_store(t, base.add_xplines(x), &round.to_le_bytes());
        }
        m.sfence(t);
    }
    assert_eq!(m.metrics().telemetry.media.write, 0);
    let absorption = m.metrics().telemetry.write_absorption();
    assert!(
        absorption.is_some_and(|a| (a - 1.0).abs() < 1e-9),
        "full absorption: {absorption:?}"
    );
}

#[test]
fn eadr_vs_adr_crash_difference() {
    for (eadr, expect) in [(false, 0u64), (true, 99u64)] {
        let mut cfg = MachineConfig::g2(PrefetchConfig::none(), 1);
        cfg.eadr = eadr;
        let mut m = Machine::new(cfg);
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 99);
        // No flush: only eADR keeps it.
        m.power_fail(CrashPolicy::LoseUnflushed);
        assert_eq!(m.peek_u64(a), expect, "eadr={eadr}");
    }
}

#[test]
fn interleaving_engages_all_dimms() {
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::none(), 6));
    let t = m.spawn(0);
    let base = m.alloc_pm(6 * 4096 * 8, 4096);
    for i in 0..48u64 {
        m.load_u64(t, base.add(i * 4096));
        m.clflushopt(t, base.add(i * 4096));
    }
    let stats = m.metrics().dimms;
    assert_eq!(stats.len(), 6);
    for (i, s) in stats.iter().enumerate() {
        assert!(s.media.read > 0, "DIMM {i} saw traffic");
    }
}

#[test]
fn threads_have_independent_clocks_but_shared_memory() {
    let mut m = g1();
    let t1 = m.spawn(0);
    let t2 = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    m.store_u64(t1, a, 42);
    // t2 sees t1's store functionally even though clocks differ.
    assert_eq!(m.load_u64(t2, a), 42);
    m.advance(t1, 1_000_000);
    assert!(m.now(t1) > m.now(t2));
}

#[test]
fn remote_socket_uses_its_own_caches() {
    let mut m = g1();
    let local = m.spawn(0);
    let remote = m.spawn(1);
    let a = m.alloc_pm(64, 64);
    // Warm the local socket's caches.
    m.load_u64(local, a);
    let b = m.now(remote);
    m.load_u64(remote, a);
    let remote_first = m.now(remote) - b;
    assert!(
        remote_first > 500,
        "remote thread's first load misses its own hierarchy: {remote_first}"
    );
}

#[test]
fn generation_presets_differ_observably() {
    // One concrete observable per §3 finding: reread of a clwb'd line.
    let run = |gen: Generation| {
        let mut m = Machine::new(MachineConfig::for_generation(
            gen,
            PrefetchConfig::none(),
            1,
        ));
        let t = m.spawn(0);
        let a = m.alloc_pm(64, 64);
        m.store_u64(t, a, 1);
        m.clwb(t, a);
        m.mfence(t);
        let b = m.now(t);
        m.load_u64(t, a);
        m.now(t) - b
    };
    let g1_lat = run(Generation::G1);
    let g2_lat = run(Generation::G2);
    assert!(
        g1_lat > g2_lat * 10,
        "G1 invalidating clwb vs G2 retaining clwb: {g1_lat} vs {g2_lat}"
    );
}

#[test]
fn cold_reset_resets_timing_but_not_data() {
    let mut m = g1();
    let t = m.spawn(0);
    let base = m.alloc_pm(4096, 256);
    for i in 0..16u64 {
        m.store_u64(t, base.add_xplines(i), i);
        m.clwb(t, base.add_xplines(i));
    }
    m.sfence(t);
    m.cold_reset();
    let before = m.metrics().telemetry;
    assert_eq!(before.imc.read, 0);
    for i in 0..16u64 {
        assert_eq!(m.load_u64(t, base.add_xplines(i)), i);
    }
    assert!(m.metrics().telemetry.media.read > 0, "caches were cold");
}

#[test]
fn dirty_llc_eviction_is_a_persist_point() {
    // Writes that are never flushed still become durable when the cache
    // hierarchy evicts them — the reason uncontrolled eviction order
    // matters for crash consistency.
    let mut m = g1();
    let t = m.spawn(0);
    let a = m.alloc_pm(64, 64);
    m.store_u64(t, a, 7);
    let filler = m.alloc_pm(40 << 20, 64);
    for i in 0..((40 << 20) / 64u64) {
        m.store_u64(t, filler.add_cachelines(i), i);
    }
    let tel = m.metrics().telemetry;
    assert!(tel.imc.write > 0, "evictions generated PM writes");
    m.power_fail(CrashPolicy::LoseUnflushed);
    assert_eq!(m.peek_u64(a), 7);
}

#[test]
fn streaming_copy_round_trips_and_avoids_prefetch_training() {
    let mut m = Machine::new(MachineConfig::g1(PrefetchConfig::all(), 1));
    let t = m.spawn(0);
    let src = m.alloc_pm(XPLINE_BYTES * 16, 256);
    let dst = m.alloc_dram(XPLINE_BYTES, 64);
    for i in 0..64u64 {
        m.store_u64(t, src.add_cachelines(i), i);
    }
    for i in 0..64u64 {
        m.clwb(t, src.add_cachelines(i));
    }
    m.sfence(t);
    m.cold_reset();
    let before = m.metrics().telemetry;
    // Copy four scattered XPLines; prefetchers must not amplify media
    // reads beyond the demanded lines.
    for &x in &[3u64, 9, 1, 14] {
        m.copy_xpline_streaming(t, src.add_xplines(x), dst);
        for cl in 0..4u64 {
            assert_eq!(m.peek_u64(dst.add_cachelines(cl)), x * 4 + cl);
        }
    }
    let d = m.metrics().telemetry.delta(&before);
    assert_eq!(d.media.read, 4 * XPLINE_BYTES, "no prefetch waste");
}
