//! End-to-end checks of the paper's artifact claims (C1–C9) through the
//! public facade, at reduced scale.
//!
//! The full-resolution versions live in the `experiments` crate's unit
//! tests and in the `repro` binary; these integration tests pin the
//! *direction* of every claim so a regression anywhere in the stack
//! (buffers, caches, iMC, structures) fails loudly.

use optane_study::core::Generation;
use optane_study::experiments::{e1_read_buffer, e4_wb_hit, e5_rap, e8_btree};

#[test]
fn c1_read_buffer_capacity_step() {
    let r = e1_read_buffer::run(&e1_read_buffer::E1Params {
        generation: Generation::G1,
        wss_points: vec![8 << 10, 24 << 10],
        rounds: 2,
        metrics: None,
        seed: 0,
    });
    let one = r.curve("read 1 cacheline").unwrap();
    let four = r.curve("read 4 cachelines").unwrap();
    // Below capacity: RA tracks 4/CpX; above: everything is 4.
    assert!((one.y_at(8192.0).unwrap() - 4.0).abs() < 0.2);
    assert!((four.y_at(8192.0).unwrap() - 1.0).abs() < 0.2);
    assert!((four.y_at((24 << 10) as f64).unwrap() - 4.0).abs() < 0.3);
}

#[test]
fn c4_wb_hit_ratio_graceful_and_generation_ordered() {
    let r = e4_wb_hit::run(&e4_wb_hit::E4Params {
        wss_points: vec![8 << 10, 20 << 10],
        writes: 6000,
    });
    let g1 = r.curve("G1 Optane").unwrap();
    let g2 = r.curve("G2 Optane").unwrap();
    assert!(g1.y_at(8192.0).unwrap() > 0.95);
    let g1_20 = g1.y_at((20 << 10) as f64).unwrap();
    let g2_20 = g2.y_at((20 << 10) as f64).unwrap();
    assert!(g1_20 < g2_20, "larger G2 buffer holds on longer");
    assert!(g1_20 > 0.3, "random eviction decays gracefully, no cliff");
}

#[test]
fn c5_rap_fixed_by_g2_clwb_only() {
    let run_gen = |gen| {
        e5_rap::run(&e5_rap::E5Params {
            generation: gen,
            distances: vec![0],
            iters: 300,
        })
        .expect("valid params")
    };
    let g1 = run_gen(Generation::G1);
    let g2 = run_gen(Generation::G2);
    let g1_pm = g1.iter().find(|r| r.name.contains("local PM")).unwrap();
    let g2_pm = g2.iter().find(|r| r.name.contains("local PM")).unwrap();
    let g1_clwb = g1_pm.curve("PM+clwb+mfence").unwrap().y_at(0.0).unwrap();
    let g2_clwb = g2_pm.curve("PM+clwb+mfence").unwrap().y_at(0.0).unwrap();
    let g2_nt = g2_pm
        .curve("PM+nt-store+mfence")
        .unwrap()
        .y_at(0.0)
        .unwrap();
    assert!(g1_clwb > 2000.0, "G1 clwb RAP is ~10x: {g1_clwb}");
    assert!(g2_clwb < 500.0, "G2 clwb keeps the line cached: {g2_clwb}");
    assert!(g2_nt > 2000.0, "nt-store RAP survives on G2: {g2_nt}");
}

#[test]
fn c8_redo_logging_wins_exactly_on_g1() {
    let r = e8_btree::run(&e8_btree::E8Params {
        inserts: 4000,
        threads: vec![1],
        generations: vec![Generation::G1, Generation::G2],
        dimms: 1,
    });
    let g1_thr = &r[0];
    let g1_redo = g1_thr
        .curve("Out-of-place update")
        .unwrap()
        .y_at(1.0)
        .unwrap();
    let g1_inplace = g1_thr.curve("In-place update").unwrap().y_at(1.0).unwrap();
    assert!(
        g1_redo > g1_inplace * 1.15,
        "G1 throughput: redo wins: {g1_redo} vs {g1_inplace}"
    );
    let g2_thr = &r[2];
    let g2_redo = g2_thr
        .curve("Out-of-place update")
        .unwrap()
        .y_at(1.0)
        .unwrap();
    let g2_inplace = g2_thr.curve("In-place update").unwrap().y_at(1.0).unwrap();
    let ratio = g2_redo / g2_inplace;
    assert!(
        (0.7..1.35).contains(&ratio),
        "G2: strategies converge: {g2_redo} vs {g2_inplace}"
    );
}
