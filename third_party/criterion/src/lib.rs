//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! This workspace must build and test with no network and no registry
//! cache (see `DESIGN.md`, "Offline builds"), so the real criterion crate
//! can never be fetched. This shim implements the subset the `bench`
//! crate's benchmarks use — `criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, benchmark groups with `bench_with_input`
//! and `Throughput`, and `Bencher::iter` — with plain wall-clock timing
//! and median-of-samples reporting. There are no statistical comparisons,
//! plots, or saved baselines; the point is that `cargo bench` runs and
//! prints a usable time-per-iteration for every benchmark.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation; recorded and echoed, no rate math beyond el/s.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Runs `f` repeatedly and records per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch takes >= 1 ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 24 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 8;
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.total_cmp(b));
        ns[ns.len() / 2]
    }
}

fn report(full_name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let ns = b.median_ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  {:.2} Melem/s", n as f64 * 1e3 / ns)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  {:.2} MiB/s", n as f64 * 1e9 / ns / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench: {full_name:<55} {ns:>12.1} ns/iter{rate}");
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), &b, self.throughput);
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: either `criterion_group!(name, fns...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
