//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace must build and test with **no network and no registry
//! cache** (see `DESIGN.md`, "Offline builds"). The real proptest crate can
//! therefore never be fetched. This shim implements the subset of the
//! proptest API the workspace's property suites use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`, `prop_oneof!`, `any`, integer/float
//! range strategies, tuples, `prop::collection::vec`, `prop_map`, and
//! `ProptestConfig { cases }` — on top of a deterministic SplitMix64
//! generator seeded from the test's module path and name.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! - **Deterministic.** Every run of a given test generates the same case
//!   sequence, so CI failures always reproduce locally.
//! - **Case count** defaults to 64 and is overridable with the standard
//!   `PROPTEST_CASES` environment variable or `ProptestConfig { cases }`.
//! - `proptest-regressions` files are **not** replayed; recorded
//!   regressions are pinned as plain `#[test]` functions next to the
//!   suites instead (see `crates/cache/tests/props.rs`).

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::Range;

// ----- deterministic RNG ------------------------------------------------

/// SplitMix64 generator driving all strategies. Not related to
/// `simbase::SplitMix64` (the shim must stay dependency-free).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary byte string (FNV-1a), typically
    /// `module_path!()::test_name`.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`. `hi` must be strictly greater than `lo`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        let span = hi - lo;
        if span == 0 {
            // hi - lo wrapped (lo = 0, hi = 2^64): full range.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// Uniform in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ----- configuration ----------------------------------------------------

/// Subset of proptest's run configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; ignored (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

// ----- strategies -------------------------------------------------------

/// A value generator. The shim's `Strategy` produces values directly; there
/// is no intermediate value tree because there is no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed strategy, as in real proptest.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()`: arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted union of boxed strategies (`prop_oneof!` backing type).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range_u64(0, self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum checked in Union::new")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, size_range)`: vectors of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.end > self.size.start {
                rng.gen_range_u64(self.size.start as u64, self.size.end as u64) as usize
            } else {
                self.size.start
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ----- macros -----------------------------------------------------------

/// Defines property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 12, ..Default::default() })]
///     #[test]
///     fn my_prop(x in 0u64..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $crate::__proptest_bind!(__rng; ($($params)*) $body);
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; () $body:block) => { $body };
    ($rng:ident; ($pat:pat in $strat:expr) $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; () $body)
    }};
    ($rng:ident; ($pat:pat in $strat:expr, $($rest:tt)*) $body:block) => {{
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; ($($rest)*) $body)
    }};
}

/// Asserts a condition inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test (panics — no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// The conventional bulk import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };

    /// Mirrors `proptest::prelude::prop` (strategy modules).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
        #[test]
        fn macro_binds_patterns(
            v in prop::collection::vec((0u64..4, any::<bool>()), 1..10),
            mut count in 0usize..3,
        ) {
            count += v.len();
            prop_assert!(count >= v.len());
            for (x, _) in v {
                prop_assert!(x < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn oneof_picks_all_arms(picks in prop::collection::vec(prop_oneof![
            3 => (0u64..10).prop_map(|v| v),
            1 => Just(99u64),
        ], 50..51)) {
            prop_assert!(picks.iter().all(|&p| p < 10 || p == 99));
        }
    }
}
